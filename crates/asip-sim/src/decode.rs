//! The pre-decoded execution engine.
//!
//! [`DecodedProgram::decode`] lowers a [`Program`] once into a dense,
//! flat instruction array the interpreter can execute without touching
//! the IR (or the boxed [`Value`] representation) again:
//!
//! - every instruction becomes one copy-only decoded entry in a
//!   single `Vec`, grouped by block with per-block index ranges;
//! - all run-time data lives in two **typed arenas**: one flat `i64`
//!   allocation and one flat `f64` allocation, each laid out
//!   `[arrays][registers][constants]`. Operand types are static in
//!   the IR (registers are typed, validation pins operand types per
//!   op), so every operand resolves at decode time to an arena slot
//!   and the hot loop does raw machine arithmetic — no `Value` enum
//!   packing, unpacking or coercion;
//! - array accesses carry their bounds/offset/element size inline
//!   (with specialized element-indexed variants for the default
//!   `base = 0, elem_size = 1` layout that skip the address
//!   arithmetic);
//! - branch targets are resolved to decoded block indices;
//! - chained super-instructions are flattened into a side table and
//!   evaluated in the generic [`Value`] domain (they are rare and
//!   their contract is defined over [`eval_binop`]).
//!
//! The hot loop exploits two structural invariants (established at
//! decode time):
//!
//! - **block-granular stepping** — a well-formed block has its single
//!   terminator last, so entering a block of `n` instructions executes
//!   exactly `n` dynamic operations. The step-limit check runs once per
//!   block; only a block that *could* cross the limit falls back to a
//!   per-instruction careful loop that reproduces the reference
//!   interpreter's exact error ordering.
//! - **derived profiles** — for the same reason, every instruction in a
//!   block executes exactly once per block entry, so the hot loop only
//!   counts block entries; per-instruction counts (and `total_ops`) are
//!   reconstructed from the block counters after the run, via
//!   precomputed per-block profile-slot lists. The result is
//!   byte-identical to the reference interpreter's bump-per-instruction
//!   profile.
//!
//! Per-run state lives in a reusable, arena-backed [`RunState`]: both
//! typed arenas are single allocations sized once at decode time and
//! **reset by `memcpy`** from the decoded init images at the start of
//! every run. [`Engine`] pools states internally, so sweeps that run
//! the same decoded program thousands of times (ablation, design-space
//! search, batched profiling) perform zero per-run bank allocations —
//! see [`Engine::run_batch`], [`Engine::run_pooled`] and
//! [`Engine::bind`] (input validation hoisted out of the per-run
//! path). Output memory is materialized lazily: profile-only runs
//! never re-box arenas into `Vec<Value>`.
//!
//! Error paths allocate nothing until an error actually occurs: the
//! decoded load/store entries carry only declaration indices, and the
//! array name for an [`SimError::OutOfBounds`] message is rebuilt from
//! the decode-time array plan at error time.
//!
//! Traced runs ([`Engine::run_traced`]) use a separate specialized loop
//! so the untraced hot path carries no `Option<sink>` check; the trace
//! loop rebuilds each event's `&Inst` from a decoded-index origin
//! table.
//!
//! ## Decode-time validation vs run-time checks
//!
//! Decoding assumes a structurally *and type* valid program (the
//! builder and the parser validate; see [`Program::validate`]) and
//! resolves every register, array and block reference — and every
//! operand type — eagerly. A dangling reference or an operand type
//! validation would reject panics at decode time, where the reference
//! interpreter would only panic (or silently coerce) if the broken
//! instruction were ever executed. Data-dependent conditions (input
//! binding, array indices, the step limit) remain run-time checks with
//! the exact error values of the reference interpreter.
//!
//! ## Example
//!
//! ```
//! use asip_sim::{DataSet, Engine};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let program = {
//! #     use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
//! #     let mut b = ProgramBuilder::new("t");
//! #     let x = b.input_array("x", Ty::Int, 4);
//! #     let e = b.entry_block();
//! #     b.select_block(e);
//! #     let v = b.load(x, Operand::imm_int(0));
//! #     let _ = b.binary(BinOp::Add, v.into(), Operand::imm_int(1));
//! #     b.ret(None);
//! #     b.finish()?
//! # };
//! // decode once, run many times
//! let engine = Engine::new(Arc::new(program));
//! let mut data = DataSet::new();
//! data.bind_ints("x", vec![1, 2, 3, 4]);
//! let first = engine.run(&data)?;
//! let again = engine.run(&data)?;
//! assert_eq!(first.profile, again.profile);
//! # Ok(())
//! # }
//! ```

use crate::data::DataSet;
use crate::error::{Result, SimError};
use crate::machine::{eval_binop, Execution};
use crate::profile::Profile;
use crate::trace::{TraceEvent, TraceSink};
use asip_ir::{ArrayKind, BinOp, InstKind, Operand, Program, Ty, UnOp, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One pre-decoded instruction: a copy-only struct whose operands are
/// slots into the typed register banks.
#[derive(Debug, Clone, Copy)]
enum DecodedInst {
    /// Integer-domain binary op (including comparisons): `ints[dst] =
    /// op(ints[lhs], ints[rhs])`.
    IntBin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Float-domain binary op with a float result.
    FloatBin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Float comparison: float operands, integer (0/1) result.
    FloatCmp {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Integer unary op (`neg`, `not`, int `mov`).
    IntUn { op: UnOp, dst: u32, src: u32 },
    /// Float unary op (`fneg`, float `mov`, math functions).
    FloatUn { op: UnOp, dst: u32, src: u32 },
    /// `floats[dst] = ints[src] as f64`
    IntToFloat { dst: u32, src: u32 },
    /// `ints[dst] = floats[src] as i64` (truncating, like C)
    FloatToInt { dst: u32, src: u32 },
    /// Element-indexed load from an int array (`base = 0, elem = 1`);
    /// `decl` indexes the `direct` arena-span table.
    LoadInt { dst: u32, decl: u32, index: u32 },
    /// Int-array load through the general address layout (`arr` is the
    /// declaration index; the address plan lives there).
    LoadIntAddr { dst: u32, arr: u32, index: u32 },
    /// Element-indexed load from a float array.
    LoadFloat { dst: u32, decl: u32, index: u32 },
    /// Float-array load through the general address layout.
    LoadFloatAddr { dst: u32, arr: u32, index: u32 },
    /// Element-indexed store to an int array.
    StoreInt { decl: u32, index: u32, value: u32 },
    /// Int-array store through the general address layout.
    StoreIntAddr { arr: u32, index: u32, value: u32 },
    /// Element-indexed store to a float array.
    StoreFloat { decl: u32, index: u32, value: u32 },
    /// Float-array store through the general address layout.
    StoreFloatAddr { arr: u32, index: u32, value: u32 },
    /// Conditional branch on a non-zero integer condition.
    Branch { cond: u32, then_b: u32, else_b: u32 },
    /// Decode-time fusion of an integer binary op feeding the block's
    /// terminating branch (the dominant loop back-edge pattern:
    /// `cmp` + `br`). Counts as **two** dynamic steps and two profile
    /// slots; the destination register is still written.
    IntBinBranch {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_b: u32,
        else_b: u32,
    },
    /// Fusion of a float comparison feeding the terminating branch.
    FloatCmpBranch {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_b: u32,
        else_b: u32,
    },
    /// Mov-chain collapse: an integer binary op whose result the next
    /// instruction `mov`s into a second register (`v = op(lhs, rhs);
    /// dst = v; dst2 = v` — the accumulator-update idiom). Two steps.
    IntBinMov {
        op: BinOp,
        dst: u32,
        dst2: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Mov-chain collapse of a float binary op feeding a float `mov`.
    FloatBinMov {
        op: BinOp,
        dst: u32,
        dst2: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Address-arithmetic fusion: an integer binary op whose result
    /// immediately indexes a direct-layout int array load
    /// (`v = op(lhs, rhs); dst = v; ld = array[v]`). Two steps.
    IntBinLoadInt {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        ld: u32,
        decl: u32,
    },
    /// Address-arithmetic fusion feeding a direct float-array load.
    IntBinLoadFloat {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        ld: u32,
        decl: u32,
    },
    /// Unconditional jump to a decoded block index.
    Jump { target: u32 },
    /// `ret` with no value.
    RetNone,
    /// `ret` of an integer slot.
    RetInt { src: u32 },
    /// `ret` of a float slot.
    RetFloat { src: u32 },
    /// Chained super-instruction; `plan` indexes the chain side table.
    Chained { dst: u32, plan: u32 },
    /// Decode-time marker for a block without a terminator. Executing
    /// it reproduces the reference interpreter's panic; it costs no
    /// dynamic step and has no profile slot.
    Unterminated,
}

/// The decoded shape of one basic block.
#[derive(Debug, Clone, Copy)]
struct BlockPlan {
    /// First decoded index of this block.
    start: u32,
    /// One past the last decoded index (sentinel included, if any).
    end: u32,
    /// Dynamic operations one entry executes (sentinel excluded).
    steps: u32,
}

/// Decode-time metadata for one declared array: its arena placement,
/// address layout, and the binding/error context (name, kind).
#[derive(Debug, Clone)]
struct ArrayPlan {
    name: String,
    ty: Ty,
    len: usize,
    kind: ArrayKind,
    base: i64,
    elem_size: i64,
    /// Element offset of this array's span in the matching typed
    /// arena.
    offset: u32,
}

/// The hot-path address plan for one declared array: a compact copy of
/// the layout fields (no name string nearby), with power-of-two element
/// sizes strength-reduced to shift/mask at decode time. Indexed by
/// declaration order, like `arrays`.
#[derive(Debug, Clone, Copy)]
struct AddrPlan {
    base: i64,
    elem: i64,
    /// `log2(elem)` when `pow2`.
    shift: u32,
    /// `elem - 1` when `pow2`.
    mask: i64,
    len: usize,
    /// Element offset of the array's span in the matching typed arena.
    offset: u32,
    pow2: bool,
}

/// The arena span of one declared array, for direct-layout accesses
/// and input binding: element offset into the matching typed arena,
/// and length. Indexed by declaration order, like `arrays`.
#[derive(Debug, Clone, Copy)]
struct Direct {
    off: u32,
    len: u32,
}

impl AddrPlan {
    /// [`asip_ir::ArrayDecl::element_of`], inlined and
    /// strength-reduced.
    #[inline(always)]
    fn element_of(&self, addr: i64) -> Option<usize> {
        let off = addr.checked_sub(self.base)?;
        if off < 0 {
            return None;
        }
        let idx = if self.pow2 {
            if off & self.mask != 0 {
                return None;
            }
            (off >> self.shift) as usize
        } else {
            if off % self.elem != 0 {
                return None;
            }
            (off / self.elem) as usize
        };
        (idx < self.len).then_some(idx)
    }
}

/// A typed bank slot (for the generic chained-op path).
#[derive(Debug, Clone, Copy)]
enum TSlot {
    /// Integer-bank slot.
    I(u32),
    /// Float-bank slot.
    F(u32),
}

/// A flattened chained super-instruction: `acc = head(lhs, rhs)` (or
/// `lhs` with no head op), then `acc = op(acc, slot)` per tail step —
/// the evaluation contract shared with the rewriter. Chains are
/// evaluated in the generic [`Value`] domain; they are rare (only
/// rewritten programs contain them) and their contract is defined over
/// [`eval_binop`].
#[derive(Debug, Clone)]
struct ChainPlan {
    head: Option<BinOp>,
    lhs: TSlot,
    rhs: TSlot,
    tail: Vec<(BinOp, TSlot)>,
    dst_float: bool,
}

/// Control-flow outcome of one executed instruction. Kept small and
/// allocation-free; error context is rebuilt by the caller from the
/// payload only when an error actually occurs.
enum Step {
    Next,
    Goto(u32),
    Halt(Option<Value>),
    /// Out-of-bounds access: the offending *declaration* index and
    /// address (enough to rebuild the exact reference error).
    Oob {
        decl: u32,
        addr: i64,
    },
}

/// A reusable, arena-backed run state: one flat `i64` arena and one
/// flat `f64` arena (each laid out `[arrays][registers][constants]`)
/// plus the per-block entry counters. Created by [`Engine::new_state`]
/// or checked out of the engine's internal pool by the pooled run
/// APIs; every [`Engine::run_into`] resets it by `memcpy` from the
/// decoded init images before executing, so a faulted or interrupted
/// run can never leak state into the next one.
#[derive(Debug)]
pub struct RunState {
    ints: Vec<i64>,
    floats: Vec<f64>,
    block_counts: Vec<u64>,
}

/// Input bindings validated and converted once per `(program,
/// dataset)` pair: the typed values of every input array plus the
/// arena offsets they are copied to at the start of each run.
/// Re-validating and re-collecting bindings per run is the other half
/// of the per-run allocation storm [`RunState`] removes — prepare once
/// with [`Engine::bind`], reuse across a whole batch or sweep.
#[derive(Debug, Clone)]
pub struct BoundInputs {
    ints: Vec<(u32, Vec<i64>)>,
    floats: Vec<(u32, Vec<f64>)>,
    /// Arena-size stamps: a `BoundInputs` only fits the program whose
    /// arenas have exactly these sizes (checked on every run).
    int_arena: usize,
    float_arena: usize,
}

/// What a profile-only run produces: everything an [`Execution`]
/// carries except the materialized output memory (see
/// [`Engine::run_profile`]; pair with [`Engine::materialize_memory`]
/// when the outputs are actually needed).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The derived execution profile.
    pub profile: Profile,
    /// The program's `ret` value, if any.
    pub result: Option<Value>,
}

/// Run-state pool counters (see [`Engine::run_state_stats`]): how many
/// runs checked a state out, and how many of those had to allocate a
/// fresh one. `creates` staying flat while `checkouts` grows is the
/// "zero per-run bank allocations" property the ablation bench
/// asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStateStats {
    /// Runs that acquired a run state (pooled or freshly allocated).
    pub checkouts: u64,
    /// Checkouts that had to allocate a fresh state.
    pub creates: u64,
}

impl RunStateStats {
    /// Fold another engine's counters into this aggregate.
    pub fn absorb(&mut self, other: RunStateStats) {
        self.checkouts += other.checkouts;
        self.creates += other.creates;
    }
}

/// A program lowered to the dense decoded form. Decode once with
/// [`DecodedProgram::decode`], execute any number of times; the decoded
/// form borrows nothing, so it can be cached next to (or inside) an
/// `Arc<Program>` — see [`Engine`].
#[derive(Debug)]
pub struct DecodedProgram {
    insts: Vec<DecodedInst>,
    /// `(block index, position in block)` per decoded index, for
    /// rebuilding trace events and error context from a decoded index.
    origins: Vec<(u32, u32)>,
    blocks: Vec<BlockPlan>,
    /// Per-block profile slots (instruction ids), flattened; indexed by
    /// the same ranges as `insts` minus sentinels via `profile_ranges`.
    profile_slots: Vec<u32>,
    /// `(start, end)` into `profile_slots` per block.
    profile_ranges: Vec<(u32, u32)>,
    arrays: Vec<ArrayPlan>,
    /// Hot-path address plans, parallel to `arrays`.
    addr_plans: Vec<AddrPlan>,
    /// Arena spans per declared array, parallel to `arrays`.
    direct: Vec<Direct>,
    chains: Vec<ChainPlan>,
    /// Init image of the int arena, laid out
    /// `[arrays][registers][constants]` (arrays and registers zeroed,
    /// constants materialized). A [`RunState`] is reset by copying
    /// these images over its arenas.
    image_ints: Vec<i64>,
    /// Init image of the float arena, same layout.
    image_floats: Vec<f64>,
    entry: u32,
    /// `Profile` sizing (the program's `next_inst_id`).
    inst_slots: usize,
    /// Working-count sizing: `max(inst_slots, max decoded id + 1)`.
    count_slots: usize,
    /// Per-decoded-index dispatch handlers (the `tail-dispatch`
    /// experiment), parallel to `insts`.
    #[cfg(feature = "tail-dispatch")]
    handlers: Vec<Handler>,
}

/// Decode-time register/constant slot assignment for one arena.
struct Bank {
    consts_i: Vec<i64>,
    consts_f: Vec<f64>,
    /// First constant slot: arrays and registers precede the pool.
    const_base: u32,
    is_float: bool,
}

impl Bank {
    fn const_slot_i(&mut self, v: i64) -> u32 {
        debug_assert!(!self.is_float);
        let idx = match self.consts_i.iter().position(|&c| c == v) {
            Some(i) => i,
            None => {
                self.consts_i.push(v);
                self.consts_i.len() - 1
            }
        };
        self.const_base + idx as u32
    }

    fn const_slot_f(&mut self, v: f64) -> u32 {
        debug_assert!(self.is_float);
        let idx = match self
            .consts_f
            .iter()
            .position(|&c| c.to_bits() == v.to_bits())
        {
            Some(i) => i,
            None => {
                self.consts_f.push(v);
                self.consts_f.len() - 1
            }
        };
        self.const_base + idx as u32
    }
}

/// Decode-time context shared by the per-instruction lowering.
struct Lowering {
    /// Register index → bank-local slot.
    reg_slots: Vec<u32>,
    /// Register index → is the float bank?
    reg_float: Vec<bool>,
    int_bank: Bank,
    float_bank: Bank,
}

impl Lowering {
    /// Resolve an operand that validation pins to `want`.
    fn slot(&mut self, o: &Operand, want: Ty) -> u32 {
        match (o, want) {
            (Operand::Reg(r), _) => {
                let i = r.index();
                assert!(i < self.reg_slots.len(), "decode: dangling register {r}");
                assert!(
                    self.reg_float[i] == (want == Ty::Float),
                    "decode: register {r} is not of type {want}"
                );
                self.reg_slots[i]
            }
            (Operand::ImmInt(v), Ty::Int) => self.int_bank.const_slot_i(*v),
            (Operand::ImmFloat(v), Ty::Float) => self.float_bank.const_slot_f(*v),
            (o, want) => panic!("decode: operand {o} is not of type {want}"),
        }
    }

    /// Resolve an operand of either type to a typed slot (chains).
    fn tslot(&mut self, o: &Operand) -> TSlot {
        match o {
            Operand::Reg(r) => {
                let i = r.index();
                assert!(i < self.reg_slots.len(), "decode: dangling register {r}");
                if self.reg_float[i] {
                    TSlot::F(self.reg_slots[i])
                } else {
                    TSlot::I(self.reg_slots[i])
                }
            }
            Operand::ImmInt(v) => TSlot::I(self.int_bank.const_slot_i(*v)),
            Operand::ImmFloat(v) => TSlot::F(self.float_bank.const_slot_f(*v)),
        }
    }

    /// The bank slot of a destination register, asserting its type.
    fn dst(&self, r: asip_ir::Reg, want: Ty) -> u32 {
        let i = r.index();
        assert!(i < self.reg_slots.len(), "decode: dangling register {r}");
        assert!(
            self.reg_float[i] == (want == Ty::Float),
            "decode: destination {r} is not of type {want}"
        );
        self.reg_slots[i]
    }
}

impl DecodedProgram {
    /// Lower a program into the decoded form.
    ///
    /// # Panics
    ///
    /// Panics on dangling register, array or block references and on
    /// operand type mismatches — the conditions [`Program::validate`]
    /// rejects. Programs built through [`asip_ir::ProgramBuilder`], the
    /// parser, or the synthesis rewriter are always valid.
    pub fn decode(program: &Program) -> Self {
        // -- arena layout ---------------------------------------------
        // per-type arenas laid out `[arrays][registers][constants]`:
        // array offsets must be known while lowering loads and stores,
        // and the constant pools only finish growing during lowering,
        // so arrays come first and constants last. Constant slots
        // therefore always compare greater than register slots, which
        // the fusion peepholes below rely on.
        let (mut int_off, mut float_off) = (0u32, 0u32);
        let arrays: Vec<ArrayPlan> = program
            .arrays
            .iter()
            .map(|a| {
                let cursor = if a.ty == Ty::Float {
                    &mut float_off
                } else {
                    &mut int_off
                };
                let offset = *cursor;
                *cursor += a.len as u32;
                ArrayPlan {
                    name: a.name.clone(),
                    ty: a.ty,
                    len: a.len,
                    kind: a.kind,
                    base: a.base,
                    elem_size: a.elem_size,
                    offset,
                }
            })
            .collect();
        let addr_plans: Vec<AddrPlan> = arrays
            .iter()
            .map(|p| {
                let pow2 = p.elem_size > 0 && (p.elem_size & (p.elem_size - 1)) == 0;
                AddrPlan {
                    base: p.base,
                    elem: p.elem_size,
                    shift: if pow2 {
                        p.elem_size.trailing_zeros()
                    } else {
                        0
                    },
                    mask: if pow2 { p.elem_size - 1 } else { 0 },
                    len: p.len,
                    offset: p.offset,
                    pow2,
                }
            })
            .collect();
        let direct: Vec<Direct> = arrays
            .iter()
            .map(|p| Direct {
                off: p.offset,
                len: p.len as u32,
            })
            .collect();

        let mut reg_slots = Vec::with_capacity(program.reg_types.len());
        let mut reg_float = Vec::with_capacity(program.reg_types.len());
        let (mut n_int, mut n_float) = (0u32, 0u32);
        for &ty in &program.reg_types {
            if ty == Ty::Float {
                reg_slots.push(float_off + n_float);
                reg_float.push(true);
                n_float += 1;
            } else {
                reg_slots.push(int_off + n_int);
                reg_float.push(false);
                n_int += 1;
            }
        }
        let mut lower = Lowering {
            reg_slots,
            reg_float,
            int_bank: Bank {
                consts_i: Vec::new(),
                consts_f: Vec::new(),
                const_base: int_off + n_int,
                is_float: false,
            },
            float_bank: Bank {
                consts_i: Vec::new(),
                consts_f: Vec::new(),
                const_base: float_off + n_float,
                is_float: true,
            },
        };
        let array_plan = |a: asip_ir::ArrayId| -> &ArrayPlan {
            assert!(a.index() < arrays.len(), "decode: dangling array {a}");
            &arrays[a.index()]
        };
        let block_index = |b: asip_ir::BlockId| -> u32 {
            assert!(
                b.index() < program.blocks.len(),
                "decode: dangling block {b}"
            );
            b.0
        };

        // -- instruction lowering -------------------------------------
        let mut insts = Vec::with_capacity(program.inst_count() + 1);
        let mut origins = Vec::with_capacity(insts.capacity());
        let mut blocks = Vec::with_capacity(program.blocks.len());
        let mut profile_slots = Vec::with_capacity(program.inst_count());
        let mut profile_ranges = Vec::with_capacity(program.blocks.len());
        let mut chains: Vec<ChainPlan> = Vec::new();
        let mut max_id = 0usize;

        for (bi, block) in program.blocks.iter().enumerate() {
            let start = insts.len() as u32;
            let pstart = profile_slots.len() as u32;
            let mut terminated = false;
            let mut source_steps = 0u32;
            for (pos, inst) in block.insts.iter().enumerate() {
                let decoded = match &inst.kind {
                    InstKind::Binary { op, dst, lhs, rhs } => {
                        if !op.is_float() {
                            DecodedInst::IntBin {
                                op: *op,
                                dst: lower.dst(*dst, Ty::Int),
                                lhs: lower.slot(lhs, Ty::Int),
                                rhs: lower.slot(rhs, Ty::Int),
                            }
                        } else if op.result_ty() == Ty::Int {
                            DecodedInst::FloatCmp {
                                op: *op,
                                dst: lower.dst(*dst, Ty::Int),
                                lhs: lower.slot(lhs, Ty::Float),
                                rhs: lower.slot(rhs, Ty::Float),
                            }
                        } else {
                            DecodedInst::FloatBin {
                                op: *op,
                                dst: lower.dst(*dst, Ty::Float),
                                lhs: lower.slot(lhs, Ty::Float),
                                rhs: lower.slot(rhs, Ty::Float),
                            }
                        }
                    }
                    InstKind::Unary { op, dst, src } => match op {
                        UnOp::Neg | UnOp::Not => DecodedInst::IntUn {
                            op: *op,
                            dst: lower.dst(*dst, Ty::Int),
                            src: lower.slot(src, Ty::Int),
                        },
                        UnOp::FNeg | UnOp::Math(_) => DecodedInst::FloatUn {
                            op: *op,
                            dst: lower.dst(*dst, Ty::Float),
                            src: lower.slot(src, Ty::Float),
                        },
                        UnOp::IntToFloat => DecodedInst::IntToFloat {
                            dst: lower.dst(*dst, Ty::Float),
                            src: lower.slot(src, Ty::Int),
                        },
                        UnOp::FloatToInt => DecodedInst::FloatToInt {
                            dst: lower.dst(*dst, Ty::Int),
                            src: lower.slot(src, Ty::Float),
                        },
                        UnOp::Mov => {
                            let src_ty = match src {
                                Operand::Reg(r) => program.reg_ty(*r),
                                Operand::ImmInt(_) => Ty::Int,
                                Operand::ImmFloat(_) => Ty::Float,
                            };
                            let decoded_src = lower.slot(src, src_ty);
                            if src_ty == Ty::Float {
                                DecodedInst::FloatUn {
                                    op: UnOp::Mov,
                                    dst: lower.dst(*dst, Ty::Float),
                                    src: decoded_src,
                                }
                            } else {
                                DecodedInst::IntUn {
                                    op: UnOp::Mov,
                                    dst: lower.dst(*dst, Ty::Int),
                                    src: decoded_src,
                                }
                            }
                        }
                    },
                    InstKind::Load { dst, array, index } => {
                        let plan = array_plan(*array);
                        let direct = plan.base == 0 && plan.elem_size == 1;
                        // every variant carries the *declaration*
                        // index: the direct span table and the address
                        // plans are both declaration-ordered
                        let decl = array.index() as u32;
                        let is_float = plan.ty == Ty::Float;
                        let index = lower.slot(index, Ty::Int);
                        if is_float {
                            let dst = lower.dst(*dst, Ty::Float);
                            if direct {
                                DecodedInst::LoadFloat { dst, decl, index }
                            } else {
                                DecodedInst::LoadFloatAddr {
                                    dst,
                                    arr: decl,
                                    index,
                                }
                            }
                        } else {
                            let dst = lower.dst(*dst, Ty::Int);
                            if direct {
                                DecodedInst::LoadInt { dst, decl, index }
                            } else {
                                DecodedInst::LoadIntAddr {
                                    dst,
                                    arr: decl,
                                    index,
                                }
                            }
                        }
                    }
                    InstKind::Store {
                        array,
                        index,
                        value,
                    } => {
                        let plan = array_plan(*array);
                        let direct = plan.base == 0 && plan.elem_size == 1;
                        let decl = array.index() as u32;
                        let is_float = plan.ty == Ty::Float;
                        let index = lower.slot(index, Ty::Int);
                        let value = lower.slot(value, plan.ty);
                        match (is_float, direct) {
                            (false, true) => DecodedInst::StoreInt { decl, index, value },
                            (false, false) => DecodedInst::StoreIntAddr {
                                arr: decl,
                                index,
                                value,
                            },
                            (true, true) => DecodedInst::StoreFloat { decl, index, value },
                            (true, false) => DecodedInst::StoreFloatAddr {
                                arr: decl,
                                index,
                                value,
                            },
                        }
                    }
                    InstKind::Branch {
                        cond,
                        then_target,
                        else_target,
                    } => DecodedInst::Branch {
                        cond: lower.slot(cond, Ty::Int),
                        then_b: block_index(*then_target),
                        else_b: block_index(*else_target),
                    },
                    InstKind::Jump { target } => DecodedInst::Jump {
                        target: block_index(*target),
                    },
                    InstKind::Ret { value } => match value {
                        None => DecodedInst::RetNone,
                        Some(o) => {
                            let ty = match o {
                                Operand::Reg(r) => program.reg_ty(*r),
                                Operand::ImmInt(_) => Ty::Int,
                                Operand::ImmFloat(_) => Ty::Float,
                            };
                            let src = lower.slot(o, ty);
                            if ty == Ty::Float {
                                DecodedInst::RetFloat { src }
                            } else {
                                DecodedInst::RetInt { src }
                            }
                        }
                    },
                    InstKind::Chained {
                        dst, inputs, ops, ..
                    } => {
                        let mut in_slots: Vec<TSlot> =
                            inputs.iter().map(|o| lower.tslot(o)).collect();
                        // the contract zero-fills missing head inputs
                        while in_slots.len() < 2 {
                            in_slots.push(TSlot::I(lower.int_bank.const_slot_i(0)));
                        }
                        let tail = ops
                            .iter()
                            .skip(1)
                            .zip(in_slots.iter().skip(2))
                            .map(|(op, slot)| (*op, *slot))
                            .collect();
                        let dst_float = program.reg_ty(*dst) == Ty::Float;
                        chains.push(ChainPlan {
                            head: ops.first().copied(),
                            lhs: in_slots[0],
                            rhs: in_slots[1],
                            tail,
                            dst_float,
                        });
                        DecodedInst::Chained {
                            dst: lower.dst(*dst, program.reg_ty(*dst)),
                            plan: (chains.len() - 1) as u32,
                        }
                    }
                };
                // peepholes: fuse a producer into the consumer that
                // immediately follows it in the same block when the
                // consumer reads exactly the register the producer
                // wrote — the loop back-edge compare+branch, the
                // accumulator mov chain, and address arithmetic
                // feeding a direct load. A consumer operand that is a
                // constant slot can never alias a produced register
                // (constants sit above all registers in the arena),
                // and fused variants are never matched as producers,
                // so fusion is single-level by construction.
                let decoded = match decoded {
                    DecodedInst::Branch {
                        cond,
                        then_b,
                        else_b,
                    } if insts.len() as u32 > start => match insts.last() {
                        Some(&DecodedInst::IntBin { op, dst, lhs, rhs }) if dst == cond => {
                            insts.pop();
                            DecodedInst::IntBinBranch {
                                op,
                                dst,
                                lhs,
                                rhs,
                                then_b,
                                else_b,
                            }
                        }
                        Some(&DecodedInst::FloatCmp { op, dst, lhs, rhs }) if dst == cond => {
                            insts.pop();
                            DecodedInst::FloatCmpBranch {
                                op,
                                dst,
                                lhs,
                                rhs,
                                then_b,
                                else_b,
                            }
                        }
                        _ => DecodedInst::Branch {
                            cond,
                            then_b,
                            else_b,
                        },
                    },
                    DecodedInst::IntUn {
                        op: UnOp::Mov,
                        dst,
                        src,
                    } if insts.len() as u32 > start => match insts.last() {
                        Some(&DecodedInst::IntBin {
                            op,
                            dst: d,
                            lhs,
                            rhs,
                        }) if d == src => {
                            insts.pop();
                            DecodedInst::IntBinMov {
                                op,
                                dst: d,
                                dst2: dst,
                                lhs,
                                rhs,
                            }
                        }
                        _ => DecodedInst::IntUn {
                            op: UnOp::Mov,
                            dst,
                            src,
                        },
                    },
                    DecodedInst::FloatUn {
                        op: UnOp::Mov,
                        dst,
                        src,
                    } if insts.len() as u32 > start => match insts.last() {
                        Some(&DecodedInst::FloatBin {
                            op,
                            dst: d,
                            lhs,
                            rhs,
                        }) if d == src => {
                            insts.pop();
                            DecodedInst::FloatBinMov {
                                op,
                                dst: d,
                                dst2: dst,
                                lhs,
                                rhs,
                            }
                        }
                        _ => DecodedInst::FloatUn {
                            op: UnOp::Mov,
                            dst,
                            src,
                        },
                    },
                    DecodedInst::LoadInt { dst, decl, index } if insts.len() as u32 > start => {
                        match insts.last() {
                            Some(&DecodedInst::IntBin {
                                op,
                                dst: d,
                                lhs,
                                rhs,
                            }) if d == index => {
                                insts.pop();
                                DecodedInst::IntBinLoadInt {
                                    op,
                                    dst: d,
                                    lhs,
                                    rhs,
                                    ld: dst,
                                    decl,
                                }
                            }
                            _ => DecodedInst::LoadInt { dst, decl, index },
                        }
                    }
                    DecodedInst::LoadFloat { dst, decl, index } if insts.len() as u32 > start => {
                        match insts.last() {
                            Some(&DecodedInst::IntBin {
                                op,
                                dst: d,
                                lhs,
                                rhs,
                            }) if d == index => {
                                insts.pop();
                                DecodedInst::IntBinLoadFloat {
                                    op,
                                    dst: d,
                                    lhs,
                                    rhs,
                                    ld: dst,
                                    decl,
                                }
                            }
                            _ => DecodedInst::LoadFloat { dst, decl, index },
                        }
                    }
                    other => other,
                };
                // a fused pair keeps the *producer's* origin so the
                // trace loop can re-derive both source instructions
                if matches!(
                    decoded,
                    DecodedInst::IntBinBranch { .. }
                        | DecodedInst::FloatCmpBranch { .. }
                        | DecodedInst::IntBinMov { .. }
                        | DecodedInst::FloatBinMov { .. }
                        | DecodedInst::IntBinLoadInt { .. }
                        | DecodedInst::IntBinLoadFloat { .. }
                ) {
                    origins.pop();
                    origins.push((bi as u32, pos as u32 - 1));
                } else {
                    origins.push((bi as u32, pos as u32));
                }
                insts.push(decoded);
                profile_slots.push(inst.id.0);
                source_steps += 1;
                max_id = max_id.max(inst.id.index() + 1);
                if inst.is_terminator() {
                    terminated = true;
                    break;
                }
            }
            if !terminated {
                insts.push(DecodedInst::Unterminated);
                origins.push((bi as u32, block.insts.len() as u32));
            }
            blocks.push(BlockPlan {
                start,
                end: insts.len() as u32,
                steps: source_steps,
            });
            profile_ranges.push((pstart, profile_slots.len() as u32));
        }

        let mut image_ints = vec![0i64; (int_off + n_int) as usize];
        image_ints.extend(&lower.int_bank.consts_i);
        let mut image_floats = vec![0f64; (float_off + n_float) as usize];
        image_floats.extend(&lower.float_bank.consts_f);

        #[cfg(feature = "tail-dispatch")]
        let handlers = insts.iter().map(handler_for).collect();

        DecodedProgram {
            insts,
            origins,
            blocks,
            profile_slots,
            profile_ranges,
            arrays,
            addr_plans,
            direct,
            chains,
            image_ints,
            image_floats,
            entry: program.entry.0,
            inst_slots: program.next_inst_id as usize,
            count_slots: (program.next_inst_id as usize).max(max_id),
            #[cfg(feature = "tail-dispatch")]
            handlers,
        }
    }

    /// Number of decoded instructions (sentinels included).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing was decoded (impossible for a valid program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Allocate a fresh, reset [`RunState`] sized for this program's
    /// arenas.
    pub(crate) fn new_state(&self) -> RunState {
        RunState {
            ints: self.image_ints.clone(),
            floats: self.image_floats.clone(),
            block_counts: vec![0u64; self.blocks.len()],
        }
    }

    /// Validate and convert input bindings — the same checks, in the
    /// same declaration order, as the reference interpreter — into
    /// arena spans ready to copy in at the start of each run.
    pub(crate) fn bind(&self, data: &DataSet) -> Result<BoundInputs> {
        let mut ints = Vec::new();
        let mut floats = Vec::new();
        for plan in &self.arrays {
            if plan.kind != ArrayKind::Input {
                continue;
            }
            let bound = data.get(&plan.name).ok_or_else(|| SimError::UnboundInput {
                name: plan.name.clone(),
            })?;
            if bound.len() != plan.len {
                return Err(SimError::WrongLength {
                    name: plan.name.clone(),
                    expected: plan.len,
                    got: bound.len(),
                });
            }
            if bound.iter().any(|v| v.ty() != plan.ty) {
                return Err(SimError::WrongType {
                    name: plan.name.clone(),
                });
            }
            if plan.ty == Ty::Float {
                floats.push((plan.offset, bound.iter().map(Value::as_float).collect()));
            } else {
                ints.push((plan.offset, bound.iter().map(Value::as_int).collect()));
            }
        }
        Ok(BoundInputs {
            ints,
            floats,
            int_arena: self.image_ints.len(),
            float_arena: self.image_floats.len(),
        })
    }

    /// Reset `state` to the decoded init images and copy the bound
    /// inputs in: two arena `memcpy`s plus one span copy per input
    /// array — no allocation. This runs at the *start* of every run,
    /// so a state that carries a faulted run's partial writes is
    /// scrubbed before it is ever read again.
    fn reset_into(&self, state: &mut RunState, inputs: &BoundInputs) {
        assert!(
            inputs.int_arena == self.image_ints.len()
                && inputs.float_arena == self.image_floats.len()
                && state.ints.len() == self.image_ints.len()
                && state.floats.len() == self.image_floats.len()
                && state.block_counts.len() == self.blocks.len(),
            "run state / bound inputs do not fit this program's arenas"
        );
        state.ints.copy_from_slice(&self.image_ints);
        state.floats.copy_from_slice(&self.image_floats);
        state.block_counts.fill(0);
        for (off, vals) in &inputs.ints {
            state.ints[*off as usize..*off as usize + vals.len()].copy_from_slice(vals);
        }
        for (off, vals) in &inputs.floats {
            state.floats[*off as usize..*off as usize + vals.len()].copy_from_slice(vals);
        }
    }

    /// Repackage the arena's array spans into the declaration-ordered
    /// [`Value`] arrays of an [`Execution`] — the lazy half of the old
    /// eager `finish_memory`: profile-only runs never call this.
    pub(crate) fn materialize_memory(&self, state: &RunState) -> Vec<Vec<Value>> {
        self.arrays
            .iter()
            .map(|plan| {
                let span = plan.offset as usize..plan.offset as usize + plan.len;
                if plan.ty == Ty::Float {
                    state.floats[span]
                        .iter()
                        .map(|&v| Value::Float(v))
                        .collect()
                } else {
                    state.ints[span].iter().map(|&v| Value::Int(v)).collect()
                }
            })
            .collect()
    }

    /// Rebuild the out-of-bounds error for a memory access, allocating
    /// the context (array name) only now that an error is certain.
    #[cold]
    fn oob(&self, decl: u32, addr: i64) -> SimError {
        let plan = &self.arrays[decl as usize];
        SimError::OutOfBounds {
            name: plan.name.clone(),
            index: addr,
            len: plan.len,
        }
    }

    /// Direct-layout int load: the shared body of the `LoadInt` arm
    /// and its dispatch handler.
    #[inline(always)]
    fn direct_load_int(&self, dst: u32, decl: u32, index: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let d = self.direct[decl as usize];
        // a negative address wraps to a huge u64 and misses
        if (addr as u64) < d.len as u64 {
            m.ints[dst as usize] = m.ints[d.off as usize + addr as usize];
            Step::Next
        } else {
            Step::Oob { decl, addr }
        }
    }

    /// Direct-layout float load.
    #[inline(always)]
    fn direct_load_float(&self, dst: u32, decl: u32, index: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let d = self.direct[decl as usize];
        if (addr as u64) < d.len as u64 {
            m.floats[dst as usize] = m.floats[d.off as usize + addr as usize];
            Step::Next
        } else {
            Step::Oob { decl, addr }
        }
    }

    /// Direct-layout int store.
    #[inline(always)]
    fn direct_store_int(&self, decl: u32, index: u32, value: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let d = self.direct[decl as usize];
        if (addr as u64) < d.len as u64 {
            m.ints[d.off as usize + addr as usize] = m.ints[value as usize];
            Step::Next
        } else {
            Step::Oob { decl, addr }
        }
    }

    /// Direct-layout float store.
    #[inline(always)]
    fn direct_store_float(&self, decl: u32, index: u32, value: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let d = self.direct[decl as usize];
        if (addr as u64) < d.len as u64 {
            m.floats[d.off as usize + addr as usize] = m.floats[value as usize];
            Step::Next
        } else {
            Step::Oob { decl, addr }
        }
    }

    /// General-layout int load.
    #[inline(always)]
    fn addr_load_int(&self, dst: u32, arr: u32, index: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let plan = &self.addr_plans[arr as usize];
        match plan.element_of(addr) {
            Some(slot) => {
                m.ints[dst as usize] = m.ints[plan.offset as usize + slot];
                Step::Next
            }
            None => Step::Oob { decl: arr, addr },
        }
    }

    /// General-layout float load.
    #[inline(always)]
    fn addr_load_float(&self, dst: u32, arr: u32, index: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let plan = &self.addr_plans[arr as usize];
        match plan.element_of(addr) {
            Some(slot) => {
                m.floats[dst as usize] = m.floats[plan.offset as usize + slot];
                Step::Next
            }
            None => Step::Oob { decl: arr, addr },
        }
    }

    /// General-layout int store.
    #[inline(always)]
    fn addr_store_int(&self, arr: u32, index: u32, value: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let plan = &self.addr_plans[arr as usize];
        match plan.element_of(addr) {
            Some(slot) => {
                m.ints[plan.offset as usize + slot] = m.ints[value as usize];
                Step::Next
            }
            None => Step::Oob { decl: arr, addr },
        }
    }

    /// General-layout float store.
    #[inline(always)]
    fn addr_store_float(&self, arr: u32, index: u32, value: u32, m: &mut RunState) -> Step {
        let addr = m.ints[index as usize];
        let plan = &self.addr_plans[arr as usize];
        match plan.element_of(addr) {
            Some(slot) => {
                m.floats[plan.offset as usize + slot] = m.floats[value as usize];
                Step::Next
            }
            None => Step::Oob { decl: arr, addr },
        }
    }

    /// Fused address-arith + direct int load: the produced value is
    /// written to `dst` *and* used directly as the load address.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // mirrors the fused variant's fields
    fn int_bin_load_int(
        &self,
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        ld: u32,
        decl: u32,
        m: &mut RunState,
    ) -> Step {
        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
        m.ints[dst as usize] = v;
        let d = self.direct[decl as usize];
        if (v as u64) < d.len as u64 {
            m.ints[ld as usize] = m.ints[d.off as usize + v as usize];
            Step::Next
        } else {
            Step::Oob { decl, addr: v }
        }
    }

    /// Fused address-arith + direct float load.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // mirrors the fused variant's fields
    fn int_bin_load_float(
        &self,
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        ld: u32,
        decl: u32,
        m: &mut RunState,
    ) -> Step {
        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
        m.ints[dst as usize] = v;
        let d = self.direct[decl as usize];
        if (v as u64) < d.len as u64 {
            m.floats[ld as usize] = m.floats[d.off as usize + v as usize];
            Step::Next
        } else {
            Step::Oob { decl, addr: v }
        }
    }

    /// Evaluate a chained super-instruction in the generic [`Value`]
    /// domain.
    #[inline(always)]
    fn run_chain(&self, dst: u32, plan: u32, m: &mut RunState) -> Step {
        let chain = &self.chains[plan as usize];
        let read = |s: TSlot| -> Value {
            match s {
                TSlot::I(i) => Value::Int(m.ints[i as usize]),
                TSlot::F(i) => Value::Float(m.floats[i as usize]),
            }
        };
        let a = read(chain.lhs);
        let mut acc = match chain.head {
            Some(op) => eval_binop(op, a, read(chain.rhs)),
            None => a,
        };
        for &(op, slot) in &chain.tail {
            acc = eval_binop(op, acc, read(slot));
        }
        if chain.dst_float {
            m.floats[dst as usize] = acc.as_float();
        } else {
            m.ints[dst as usize] = acc.as_int();
        }
        Step::Next
    }

    /// Execute one decoded instruction. Shared by the fast block loop,
    /// the careful near-limit loop and the trace loop.
    #[inline(always)]
    fn exec(&self, inst: &DecodedInst, m: &mut RunState) -> Step {
        match *inst {
            DecodedInst::IntBin { op, dst, lhs, rhs } => {
                m.ints[dst as usize] = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                Step::Next
            }
            DecodedInst::FloatBin { op, dst, lhs, rhs } => {
                m.floats[dst as usize] =
                    eval_float_bin(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                Step::Next
            }
            DecodedInst::FloatCmp { op, dst, lhs, rhs } => {
                m.ints[dst as usize] =
                    eval_float_cmp(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                Step::Next
            }
            DecodedInst::IntUn { op, dst, src } => {
                let v = m.ints[src as usize];
                m.ints[dst as usize] = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::Mov => v,
                    _ => unreachable!("decode put a non-int unary in IntUn"),
                };
                Step::Next
            }
            DecodedInst::FloatUn { op, dst, src } => {
                let v = m.floats[src as usize];
                m.floats[dst as usize] = match op {
                    UnOp::FNeg => -v,
                    UnOp::Mov => v,
                    UnOp::Math(f) => f.eval(v),
                    _ => unreachable!("decode put a non-float unary in FloatUn"),
                };
                Step::Next
            }
            DecodedInst::IntToFloat { dst, src } => {
                m.floats[dst as usize] = m.ints[src as usize] as f64;
                Step::Next
            }
            DecodedInst::FloatToInt { dst, src } => {
                m.ints[dst as usize] = m.floats[src as usize] as i64;
                Step::Next
            }
            DecodedInst::LoadInt { dst, decl, index } => self.direct_load_int(dst, decl, index, m),
            DecodedInst::LoadFloat { dst, decl, index } => {
                self.direct_load_float(dst, decl, index, m)
            }
            DecodedInst::LoadIntAddr { dst, arr, index } => self.addr_load_int(dst, arr, index, m),
            DecodedInst::LoadFloatAddr { dst, arr, index } => {
                self.addr_load_float(dst, arr, index, m)
            }
            DecodedInst::StoreInt { decl, index, value } => {
                self.direct_store_int(decl, index, value, m)
            }
            DecodedInst::StoreFloat { decl, index, value } => {
                self.direct_store_float(decl, index, value, m)
            }
            DecodedInst::StoreIntAddr { arr, index, value } => {
                self.addr_store_int(arr, index, value, m)
            }
            DecodedInst::StoreFloatAddr { arr, index, value } => {
                self.addr_store_float(arr, index, value, m)
            }
            DecodedInst::IntBinMov {
                op,
                dst,
                dst2,
                lhs,
                rhs,
            } => {
                let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                m.ints[dst as usize] = v;
                m.ints[dst2 as usize] = v;
                Step::Next
            }
            DecodedInst::FloatBinMov {
                op,
                dst,
                dst2,
                lhs,
                rhs,
            } => {
                let v = eval_float_bin(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                m.floats[dst as usize] = v;
                m.floats[dst2 as usize] = v;
                Step::Next
            }
            DecodedInst::IntBinLoadInt {
                op,
                dst,
                lhs,
                rhs,
                ld,
                decl,
            } => self.int_bin_load_int(op, dst, lhs, rhs, ld, decl, m),
            DecodedInst::IntBinLoadFloat {
                op,
                dst,
                lhs,
                rhs,
                ld,
                decl,
            } => self.int_bin_load_float(op, dst, lhs, rhs, ld, decl, m),
            DecodedInst::Branch {
                cond,
                then_b,
                else_b,
            } => Step::Goto(if m.ints[cond as usize] != 0 {
                then_b
            } else {
                else_b
            }),
            DecodedInst::IntBinBranch {
                op,
                dst,
                lhs,
                rhs,
                then_b,
                else_b,
            } => {
                let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                m.ints[dst as usize] = v;
                Step::Goto(if v != 0 { then_b } else { else_b })
            }
            DecodedInst::FloatCmpBranch {
                op,
                dst,
                lhs,
                rhs,
                then_b,
                else_b,
            } => {
                let v = eval_float_cmp(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                m.ints[dst as usize] = v;
                Step::Goto(if v != 0 { then_b } else { else_b })
            }
            DecodedInst::Jump { target } => Step::Goto(target),
            DecodedInst::RetNone => Step::Halt(None),
            DecodedInst::RetInt { src } => Step::Halt(Some(Value::Int(m.ints[src as usize]))),
            DecodedInst::RetFloat { src } => Step::Halt(Some(Value::Float(m.floats[src as usize]))),
            DecodedInst::Chained { dst, plan } => self.run_chain(dst, plan, m),
            DecodedInst::Unterminated => {
                unreachable!("block fell through without terminator")
            }
        }
    }

    /// The value an instruction wrote to its destination register, if
    /// any (trace events only; the fused non-branch variants write two
    /// registers and are re-expanded inline by the trace loop instead).
    fn wrote(&self, inst: &DecodedInst, m: &RunState) -> Option<Value> {
        match *inst {
            DecodedInst::IntBin { dst, .. }
            | DecodedInst::FloatCmp { dst, .. }
            | DecodedInst::IntBinBranch { dst, .. }
            | DecodedInst::FloatCmpBranch { dst, .. }
            | DecodedInst::IntUn { dst, .. }
            | DecodedInst::FloatToInt { dst, .. }
            | DecodedInst::LoadInt { dst, .. }
            | DecodedInst::LoadIntAddr { dst, .. } => Some(Value::Int(m.ints[dst as usize])),
            DecodedInst::FloatBin { dst, .. }
            | DecodedInst::FloatUn { dst, .. }
            | DecodedInst::IntToFloat { dst, .. }
            | DecodedInst::LoadFloat { dst, .. }
            | DecodedInst::LoadFloatAddr { dst, .. } => Some(Value::Float(m.floats[dst as usize])),
            DecodedInst::Chained { dst, plan } => Some(if self.chains[plan as usize].dst_float {
                Value::Float(m.floats[dst as usize])
            } else {
                Value::Int(m.ints[dst as usize])
            }),
            _ => None,
        }
    }

    /// Derive the per-instruction profile from the block entry counters
    /// (every instruction in a block runs once per entry), reproducing
    /// the reference interpreter's on-demand slot growth exactly.
    fn derive_profile(&self, block_counts: &[u64], total_ops: u64) -> Profile {
        let mut inst_counts = vec![0u64; self.count_slots];
        for (b, &(pstart, pend)) in self.profile_ranges.iter().enumerate() {
            let entries = block_counts[b];
            if entries == 0 {
                continue;
            }
            for &slot in &self.profile_slots[pstart as usize..pend as usize] {
                inst_counts[slot as usize] += entries;
            }
        }
        // the reference profile only grows past `inst_slots` when an
        // instruction with a larger id actually executes
        let mut len = self.inst_slots;
        for i in (self.inst_slots..self.count_slots).rev() {
            if inst_counts[i] > 0 {
                len = i + 1;
                break;
            }
        }
        inst_counts.truncate(len);
        Profile::from_parts(inst_counts, block_counts.to_vec(), total_ops)
    }

    /// Reset `state` from the init images, copy `inputs` in, and run
    /// to completion — the allocation-free hot path under every run
    /// API (only the outcome's derived profile allocates).
    pub(crate) fn run_into(
        &self,
        state: &mut RunState,
        inputs: &BoundInputs,
        limit: u64,
    ) -> Result<RunOutcome> {
        self.reset_into(state, inputs);
        let mut steps: u64 = 0;
        let mut block = self.entry as usize;

        'outer: loop {
            state.block_counts[block] += 1;
            let plan = self.blocks[block];
            let n = plan.steps as u64;
            if steps + n > limit {
                // this block could cross the limit: fall back to the
                // reference interpreter's per-instruction ordering so
                // a data error that strikes first still wins
                for pc in plan.start as usize..plan.end as usize {
                    let inst = &self.insts[pc];
                    steps += step_weight(inst);
                    if steps > limit {
                        // which half of a fused pair crossed is
                        // unobservable: the error (and the discarded
                        // state) is the same either way
                        return Err(SimError::StepLimit { limit });
                    }
                    match self.exec(inst, state) {
                        Step::Next => {}
                        Step::Goto(b) => {
                            block = b as usize;
                            continue 'outer;
                        }
                        Step::Halt(result) => {
                            return Ok(RunOutcome {
                                profile: self.derive_profile(&state.block_counts, steps),
                                result,
                            })
                        }
                        Step::Oob { decl, addr } => return Err(self.oob(decl, addr)),
                    }
                }
            } else {
                steps += n;
                let (lo, hi) = (plan.start as usize, plan.end as usize);
                // iterate the block as a slice so the per-instruction
                // bounds check is hoisted to one check per block
                #[cfg(feature = "tail-dispatch")]
                let handlers = &self.handlers[lo..hi];
                for (pc, inst) in self.insts[lo..hi].iter().enumerate() {
                    #[cfg(not(feature = "tail-dispatch"))]
                    let _ = pc;
                    #[cfg(not(feature = "tail-dispatch"))]
                    let step = self.exec(inst, state);
                    #[cfg(feature = "tail-dispatch")]
                    let step = (handlers[pc])(self, inst, state);
                    match step {
                        Step::Next => {}
                        Step::Goto(b) => {
                            block = b as usize;
                            continue 'outer;
                        }
                        Step::Halt(result) => {
                            return Ok(RunOutcome {
                                profile: self.derive_profile(&state.block_counts, steps),
                                result,
                            })
                        }
                        Step::Oob { decl, addr } => return Err(self.oob(decl, addr)),
                    }
                }
            }
            // a block ends in a terminator or the Unterminated sentinel
            // (which panics), so falling through is impossible
            unreachable!("block fell through without terminator");
        }
    }

    /// One-shot convenience: bind, allocate a fresh state, run, and
    /// materialize the outputs (the borrowing [`crate::Simulator`]
    /// facade path; [`Engine`] pools states instead).
    pub(crate) fn execute(&self, data: &DataSet, limit: u64) -> Result<Execution> {
        let inputs = self.bind(data)?;
        let mut state = self.new_state();
        let out = self.run_into(&mut state, &inputs, limit)?;
        Ok(Execution {
            profile: out.profile,
            memory: self.materialize_memory(&state),
            result: out.result,
        })
    }

    /// Run with a per-step trace observer: the specialized slow loop.
    /// `program` must be the program this decode was built from (the
    /// trace borrows its instructions).
    pub(crate) fn execute_traced(
        &self,
        program: &Program,
        data: &DataSet,
        limit: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Execution> {
        let inputs = self.bind(data)?;
        let mut m = self.new_state();
        self.reset_into(&mut m, &inputs);
        let mut steps: u64 = 0;
        let mut block = self.entry as usize;

        'outer: loop {
            m.block_counts[block] += 1;
            let plan = self.blocks[block];
            for pc in plan.start as usize..plan.end as usize {
                let inst = &self.insts[pc];
                let (ob, opos) = self.origins[pc];
                // every fused variant re-expands into its two source
                // events, with the reference's exact limit ordering:
                // no event if the producer's step crosses the limit,
                // the producer's event but not the consumer's if the
                // consumer's step crosses
                let step = match *inst {
                    DecodedInst::IntBinBranch { .. } | DecodedInst::FloatCmpBranch { .. } => {
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let step = self.exec(inst, &mut m);
                        let producer = &program.blocks[ob as usize].insts[opos as usize];
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: producer,
                            wrote: self.wrote(inst, &m),
                        });
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let branch = &program.blocks[ob as usize].insts[opos as usize + 1];
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: branch,
                            wrote: None,
                        });
                        step
                    }
                    DecodedInst::IntBinMov {
                        op,
                        dst,
                        dst2,
                        lhs,
                        rhs,
                    } => {
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                        m.ints[dst as usize] = v;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize],
                            wrote: Some(Value::Int(v)),
                        });
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        m.ints[dst2 as usize] = v;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize + 1],
                            wrote: Some(Value::Int(v)),
                        });
                        Step::Next
                    }
                    DecodedInst::FloatBinMov {
                        op,
                        dst,
                        dst2,
                        lhs,
                        rhs,
                    } => {
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let v = eval_float_bin(op, m.floats[lhs as usize], m.floats[rhs as usize]);
                        m.floats[dst as usize] = v;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize],
                            wrote: Some(Value::Float(v)),
                        });
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        m.floats[dst2 as usize] = v;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize + 1],
                            wrote: Some(Value::Float(v)),
                        });
                        Step::Next
                    }
                    DecodedInst::IntBinLoadInt {
                        op,
                        dst,
                        lhs,
                        rhs,
                        ld,
                        decl,
                    } => {
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                        m.ints[dst as usize] = v;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize],
                            wrote: Some(Value::Int(v)),
                        });
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let d = self.direct[decl as usize];
                        if (v as u64) >= d.len as u64 {
                            return Err(self.oob(decl, v));
                        }
                        let loaded = m.ints[d.off as usize + v as usize];
                        m.ints[ld as usize] = loaded;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize + 1],
                            wrote: Some(Value::Int(loaded)),
                        });
                        Step::Next
                    }
                    DecodedInst::IntBinLoadFloat {
                        op,
                        dst,
                        lhs,
                        rhs,
                        ld,
                        decl,
                    } => {
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
                        m.ints[dst as usize] = v;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize],
                            wrote: Some(Value::Int(v)),
                        });
                        steps += 1;
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let d = self.direct[decl as usize];
                        if (v as u64) >= d.len as u64 {
                            return Err(self.oob(decl, v));
                        }
                        let loaded = m.floats[d.off as usize + v as usize];
                        m.floats[ld as usize] = loaded;
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: &program.blocks[ob as usize].insts[opos as usize + 1],
                            wrote: Some(Value::Float(loaded)),
                        });
                        Step::Next
                    }
                    _ => {
                        steps += step_weight(inst);
                        if steps > limit {
                            return Err(SimError::StepLimit { limit });
                        }
                        let step = self.exec(inst, &mut m);
                        if let Step::Oob { decl, addr } = step {
                            return Err(self.oob(decl, addr));
                        }
                        let source = &program.blocks[ob as usize].insts[opos as usize];
                        sink.event(&TraceEvent {
                            step: steps,
                            block: asip_ir::BlockId(ob),
                            inst: source,
                            wrote: self.wrote(inst, &m),
                        });
                        step
                    }
                };
                match step {
                    Step::Next => {}
                    Step::Goto(b) => {
                        block = b as usize;
                        continue 'outer;
                    }
                    Step::Halt(result) => {
                        return Ok(Execution {
                            profile: self.derive_profile(&m.block_counts, steps),
                            memory: self.materialize_memory(&m),
                            result,
                        })
                    }
                    Step::Oob { .. } => unreachable!("handled above"),
                }
            }
            unreachable!("block fell through without terminator");
        }
    }
}

/// Dynamic steps one decoded instruction accounts for: two for a fused
/// pair, zero for the unterminated-block sentinel, one otherwise.
#[inline(always)]
fn step_weight(inst: &DecodedInst) -> u64 {
    match inst {
        DecodedInst::IntBinBranch { .. }
        | DecodedInst::FloatCmpBranch { .. }
        | DecodedInst::IntBinMov { .. }
        | DecodedInst::FloatBinMov { .. }
        | DecodedInst::IntBinLoadInt { .. }
        | DecodedInst::IntBinLoadFloat { .. } => 2,
        DecodedInst::Unterminated => 0,
        _ => 1,
    }
}

/// Integer-domain binary semantics (identical to [`eval_binop`] on two
/// [`Value::Int`]s).
#[inline(always)]
fn eval_int_bin(op: BinOp, a: i64, b: i64) -> i64 {
    use BinOp::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        Shl => a.wrapping_shl((b & 63) as u32),
        Shr => a.wrapping_shr((b & 63) as u32),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        CmpLt => (a < b) as i64,
        CmpLe => (a <= b) as i64,
        CmpGt => (a > b) as i64,
        CmpGe => (a >= b) as i64,
        CmpEq => (a == b) as i64,
        CmpNe => (a != b) as i64,
        _ => unreachable!("decode put a float op in IntBin"),
    }
}

/// Float-domain binary semantics with a float result.
#[inline(always)]
fn eval_float_bin(op: BinOp, a: f64, b: f64) -> f64 {
    use BinOp::*;
    match op {
        FAdd => a + b,
        FSub => a - b,
        FMul => a * b,
        FDiv => a / b,
        _ => unreachable!("decode put a non-arithmetic op in FloatBin"),
    }
}

/// Float comparison semantics with a 0/1 integer result.
#[inline(always)]
fn eval_float_cmp(op: BinOp, a: f64, b: f64) -> i64 {
    use BinOp::*;
    match op {
        FCmpLt => (a < b) as i64,
        FCmpLe => (a <= b) as i64,
        FCmpGt => (a > b) as i64,
        FCmpGe => (a >= b) as i64,
        FCmpEq => (a == b) as i64,
        FCmpNe => (a != b) as i64,
        _ => unreachable!("decode put a non-comparison op in FloatCmp"),
    }
}

/// The `tail-dispatch` experiment: one pre-resolved function pointer
/// per decoded instruction, so the hot loop makes an indirect call per
/// instruction instead of evaluating a `match` — the closest safe Rust
/// gets to a computed-goto/threaded interpreter
/// (`#![forbid(unsafe_code)]` rules out real tail-threading). The
/// table is built at decode time, parallel to `insts`; the match loop
/// stays the default and the two are benched against each other in
/// `docs/perf.md`.
#[cfg(feature = "tail-dispatch")]
type Handler = fn(&DecodedProgram, &DecodedInst, &mut RunState) -> Step;

/// Resolve the handler for one decoded instruction.
#[cfg(feature = "tail-dispatch")]
fn handler_for(inst: &DecodedInst) -> Handler {
    use handlers::*;
    match inst {
        DecodedInst::IntBin { .. } => int_bin,
        DecodedInst::FloatBin { .. } => float_bin,
        DecodedInst::FloatCmp { .. } => float_cmp,
        DecodedInst::IntUn { .. } => int_un,
        DecodedInst::FloatUn { .. } => float_un,
        DecodedInst::IntToFloat { .. } => int_to_float,
        DecodedInst::FloatToInt { .. } => float_to_int,
        DecodedInst::LoadInt { .. } => load_int,
        DecodedInst::LoadFloat { .. } => load_float,
        DecodedInst::LoadIntAddr { .. } => load_int_addr,
        DecodedInst::LoadFloatAddr { .. } => load_float_addr,
        DecodedInst::StoreInt { .. } => store_int,
        DecodedInst::StoreFloat { .. } => store_float,
        DecodedInst::StoreIntAddr { .. } => store_int_addr,
        DecodedInst::StoreFloatAddr { .. } => store_float_addr,
        DecodedInst::Branch { .. } => branch,
        DecodedInst::IntBinBranch { .. } => int_bin_branch,
        DecodedInst::FloatCmpBranch { .. } => float_cmp_branch,
        DecodedInst::IntBinMov { .. } => int_bin_mov,
        DecodedInst::FloatBinMov { .. } => float_bin_mov,
        DecodedInst::IntBinLoadInt { .. } => int_bin_load_int,
        DecodedInst::IntBinLoadFloat { .. } => int_bin_load_float,
        DecodedInst::Jump { .. } => jump,
        DecodedInst::RetNone => ret_none,
        DecodedInst::RetInt { .. } => ret_int,
        DecodedInst::RetFloat { .. } => ret_float,
        DecodedInst::Chained { .. } => chained,
        DecodedInst::Unterminated => unterminated,
    }
}

/// Per-variant dispatch handlers. Each destructures the variant it was
/// resolved for (`handler_for` guarantees the match) and either
/// inlines the trivial arithmetic or delegates to the same
/// `#[inline(always)]` helper the match loop's arm uses, so the two
/// dispatch strategies cannot drift semantically.
#[cfg(feature = "tail-dispatch")]
mod handlers {
    use super::*;

    pub(super) fn int_bin(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::IntBin { op, dst, lhs, rhs } = *i else {
            unreachable!()
        };
        m.ints[dst as usize] = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
        Step::Next
    }

    pub(super) fn float_bin(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::FloatBin { op, dst, lhs, rhs } = *i else {
            unreachable!()
        };
        m.floats[dst as usize] = eval_float_bin(op, m.floats[lhs as usize], m.floats[rhs as usize]);
        Step::Next
    }

    pub(super) fn float_cmp(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::FloatCmp { op, dst, lhs, rhs } = *i else {
            unreachable!()
        };
        m.ints[dst as usize] = eval_float_cmp(op, m.floats[lhs as usize], m.floats[rhs as usize]);
        Step::Next
    }

    pub(super) fn int_un(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::IntUn { op, dst, src } = *i else {
            unreachable!()
        };
        let v = m.ints[src as usize];
        m.ints[dst as usize] = match op {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => !v,
            UnOp::Mov => v,
            _ => unreachable!("decode put a non-int unary in IntUn"),
        };
        Step::Next
    }

    pub(super) fn float_un(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::FloatUn { op, dst, src } = *i else {
            unreachable!()
        };
        let v = m.floats[src as usize];
        m.floats[dst as usize] = match op {
            UnOp::FNeg => -v,
            UnOp::Mov => v,
            UnOp::Math(f) => f.eval(v),
            _ => unreachable!("decode put a non-float unary in FloatUn"),
        };
        Step::Next
    }

    pub(super) fn int_to_float(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::IntToFloat { dst, src } = *i else {
            unreachable!()
        };
        m.floats[dst as usize] = m.ints[src as usize] as f64;
        Step::Next
    }

    pub(super) fn float_to_int(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::FloatToInt { dst, src } = *i else {
            unreachable!()
        };
        m.ints[dst as usize] = m.floats[src as usize] as i64;
        Step::Next
    }

    pub(super) fn load_int(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::LoadInt { dst, decl, index } = *i else {
            unreachable!()
        };
        p.direct_load_int(dst, decl, index, m)
    }

    pub(super) fn load_float(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::LoadFloat { dst, decl, index } = *i else {
            unreachable!()
        };
        p.direct_load_float(dst, decl, index, m)
    }

    pub(super) fn load_int_addr(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::LoadIntAddr { dst, arr, index } = *i else {
            unreachable!()
        };
        p.addr_load_int(dst, arr, index, m)
    }

    pub(super) fn load_float_addr(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::LoadFloatAddr { dst, arr, index } = *i else {
            unreachable!()
        };
        p.addr_load_float(dst, arr, index, m)
    }

    pub(super) fn store_int(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::StoreInt { decl, index, value } = *i else {
            unreachable!()
        };
        p.direct_store_int(decl, index, value, m)
    }

    pub(super) fn store_float(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::StoreFloat { decl, index, value } = *i else {
            unreachable!()
        };
        p.direct_store_float(decl, index, value, m)
    }

    pub(super) fn store_int_addr(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::StoreIntAddr { arr, index, value } = *i else {
            unreachable!()
        };
        p.addr_store_int(arr, index, value, m)
    }

    pub(super) fn store_float_addr(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::StoreFloatAddr { arr, index, value } = *i else {
            unreachable!()
        };
        p.addr_store_float(arr, index, value, m)
    }

    pub(super) fn branch(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::Branch {
            cond,
            then_b,
            else_b,
        } = *i
        else {
            unreachable!()
        };
        Step::Goto(if m.ints[cond as usize] != 0 {
            then_b
        } else {
            else_b
        })
    }

    pub(super) fn int_bin_branch(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::IntBinBranch {
            op,
            dst,
            lhs,
            rhs,
            then_b,
            else_b,
        } = *i
        else {
            unreachable!()
        };
        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
        m.ints[dst as usize] = v;
        Step::Goto(if v != 0 { then_b } else { else_b })
    }

    pub(super) fn float_cmp_branch(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::FloatCmpBranch {
            op,
            dst,
            lhs,
            rhs,
            then_b,
            else_b,
        } = *i
        else {
            unreachable!()
        };
        let v = eval_float_cmp(op, m.floats[lhs as usize], m.floats[rhs as usize]);
        m.ints[dst as usize] = v;
        Step::Goto(if v != 0 { then_b } else { else_b })
    }

    pub(super) fn int_bin_mov(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::IntBinMov {
            op,
            dst,
            dst2,
            lhs,
            rhs,
        } = *i
        else {
            unreachable!()
        };
        let v = eval_int_bin(op, m.ints[lhs as usize], m.ints[rhs as usize]);
        m.ints[dst as usize] = v;
        m.ints[dst2 as usize] = v;
        Step::Next
    }

    pub(super) fn float_bin_mov(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::FloatBinMov {
            op,
            dst,
            dst2,
            lhs,
            rhs,
        } = *i
        else {
            unreachable!()
        };
        let v = eval_float_bin(op, m.floats[lhs as usize], m.floats[rhs as usize]);
        m.floats[dst as usize] = v;
        m.floats[dst2 as usize] = v;
        Step::Next
    }

    pub(super) fn int_bin_load_int(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::IntBinLoadInt {
            op,
            dst,
            lhs,
            rhs,
            ld,
            decl,
        } = *i
        else {
            unreachable!()
        };
        p.int_bin_load_int(op, dst, lhs, rhs, ld, decl, m)
    }

    pub(super) fn int_bin_load_float(
        p: &DecodedProgram,
        i: &DecodedInst,
        m: &mut RunState,
    ) -> Step {
        let DecodedInst::IntBinLoadFloat {
            op,
            dst,
            lhs,
            rhs,
            ld,
            decl,
        } = *i
        else {
            unreachable!()
        };
        p.int_bin_load_float(op, dst, lhs, rhs, ld, decl, m)
    }

    pub(super) fn jump(_p: &DecodedProgram, i: &DecodedInst, _m: &mut RunState) -> Step {
        let DecodedInst::Jump { target } = *i else {
            unreachable!()
        };
        Step::Goto(target)
    }

    pub(super) fn ret_none(_p: &DecodedProgram, _i: &DecodedInst, _m: &mut RunState) -> Step {
        Step::Halt(None)
    }

    pub(super) fn ret_int(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::RetInt { src } = *i else {
            unreachable!()
        };
        Step::Halt(Some(Value::Int(m.ints[src as usize])))
    }

    pub(super) fn ret_float(_p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::RetFloat { src } = *i else {
            unreachable!()
        };
        Step::Halt(Some(Value::Float(m.floats[src as usize])))
    }

    pub(super) fn chained(p: &DecodedProgram, i: &DecodedInst, m: &mut RunState) -> Step {
        let DecodedInst::Chained { dst, plan } = *i else {
            unreachable!()
        };
        p.run_chain(dst, plan, m)
    }

    pub(super) fn unterminated(_p: &DecodedProgram, _i: &DecodedInst, _m: &mut RunState) -> Step {
        unreachable!("block fell through without terminator")
    }
}

/// Upper bound on pooled run states per engine. One state per worker
/// thread is the steady state; 64 comfortably covers any session pool
/// while bounding what an anomalous burst can pin.
const POOL_CAP: usize = 64;

/// A reusable execution engine: one program, decoded once, run many
/// times. This is what sessions cache so that repeated profiles of the
/// same program (three opt levels, suite sweeps, evaluate re-runs)
/// never pay the decode again.
///
/// The engine also pools [`RunState`]s internally: [`Engine::run`],
/// [`Engine::run_profile`], [`Engine::run_pooled`] and
/// [`Engine::run_batch`] check a state out, run (reset is a `memcpy`
/// from the decoded init images), and return it — after warm-up, a
/// sweep of thousands of runs performs zero per-run bank allocations
/// ([`Engine::run_state_stats`] counts both sides). Callers that want
/// explicit control use [`Engine::new_state`] + [`Engine::bind`] +
/// [`Engine::run_into`] directly.
///
/// [`crate::Simulator`] is the borrowing one-shot facade over the same
/// execution paths; `Engine` owns its program via `Arc` so it can
/// outlive the caller's borrow and live in caches.
#[derive(Debug)]
pub struct Engine {
    program: Arc<Program>,
    code: DecodedProgram,
    step_limit: u64,
    /// Reusable run states, checked out per run (or once per batch).
    pool: Mutex<Vec<RunState>>,
    checkouts: AtomicU64,
    creates: AtomicU64,
}

impl Engine {
    /// Decode `program` into a reusable engine with the default step
    /// limit (100 million ops, as [`crate::Simulator::new`]).
    ///
    /// # Panics
    ///
    /// As [`DecodedProgram::decode`]: panics on structurally invalid
    /// programs.
    pub fn new(program: Arc<Program>) -> Self {
        let code = DecodedProgram::decode(&program);
        Engine {
            program,
            code,
            step_limit: crate::machine::DEFAULT_STEP_LIMIT,
            pool: Mutex::new(Vec::new()),
            checkouts: AtomicU64::new(0),
            creates: AtomicU64::new(0),
        }
    }

    /// Override the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// The program this engine executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The decoded code (e.g. for inspecting the decoded length).
    pub fn decoded(&self) -> &DecodedProgram {
        &self.code
    }

    /// Take a run state from the pool, or allocate a fresh one. A
    /// poisoned pool lock is survivable: states are reset before every
    /// run, so whatever a panicking thread left behind is scrubbed.
    fn checkout(&self) -> RunState {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let pooled = self
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        pooled.unwrap_or_else(|| {
            self.creates.fetch_add(1, Ordering::Relaxed);
            self.code.new_state()
        })
    }

    /// Return a state to the pool (dropped if the pool is full). Even
    /// a state a faulted run wrote partial results into goes back:
    /// the pre-run reset makes reuse safe.
    fn checkin(&self, state: RunState) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < POOL_CAP {
            pool.push(state);
        }
    }

    /// Validate and convert `data`'s input bindings once, for reuse
    /// across any number of [`Engine::run_into`] /
    /// [`Engine::run_pooled`] calls on this engine.
    ///
    /// # Errors
    ///
    /// The binding half of [`Engine::run`]'s errors: unbound inputs,
    /// wrong lengths, wrong types.
    pub fn bind(&self, data: &DataSet) -> Result<BoundInputs> {
        self.code.bind(data)
    }

    /// Allocate a fresh [`RunState`] sized for this program's arenas,
    /// for callers that manage their own states (the pooled run APIs
    /// use the engine's internal pool instead).
    pub fn new_state(&self) -> RunState {
        self.code.new_state()
    }

    /// Run into a caller-managed state: reset by `memcpy`, copy the
    /// bound inputs in, execute. Allocates nothing but the outcome's
    /// profile.
    ///
    /// # Errors
    ///
    /// Bad array accesses and the step limit (binding errors were
    /// already surfaced by [`Engine::bind`]).
    ///
    /// # Panics
    ///
    /// Panics if `state` or `inputs` were built by an engine for a
    /// different program (arena sizes differ).
    pub fn run_into(&self, state: &mut RunState, inputs: &BoundInputs) -> Result<RunOutcome> {
        self.code.run_into(state, inputs, self.step_limit)
    }

    /// Materialize the declaration-ordered `Vec<Value>` output arrays
    /// from a state this engine just ran — the lazy half of a full
    /// [`Execution`], for when the outputs are actually needed.
    pub fn materialize_memory(&self, state: &RunState) -> Vec<Vec<Value>> {
        self.code.materialize_memory(state)
    }

    /// Run the program on the given input data.
    ///
    /// # Errors
    ///
    /// As [`crate::Simulator::run`]: data-binding mismatches, bad array
    /// accesses, and the step limit.
    pub fn run(&self, data: &DataSet) -> Result<Execution> {
        let inputs = self.code.bind(data)?;
        let mut state = self.checkout();
        let finished = self
            .code
            .run_into(&mut state, &inputs, self.step_limit)
            .map(|out| Execution {
                profile: out.profile,
                memory: self.code.materialize_memory(&state),
                result: out.result,
            });
        self.checkin(state);
        finished
    }

    /// Profile-only pooled run: binds, runs, and returns the profile
    /// and result without ever materializing `Vec<Value>` output
    /// arrays (the profile stage's path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_profile(&self, data: &DataSet) -> Result<RunOutcome> {
        let inputs = self.code.bind(data)?;
        self.run_pooled(&inputs)
    }

    /// Pooled run over inputs prepared by [`Engine::bind`], skipping
    /// per-run re-validation and output materialization.
    ///
    /// # Errors
    ///
    /// Bad array accesses and the step limit.
    pub fn run_pooled(&self, inputs: &BoundInputs) -> Result<RunOutcome> {
        let mut state = self.checkout();
        let outcome = self.code.run_into(&mut state, inputs, self.step_limit);
        self.checkin(state);
        outcome
    }

    /// Run a batch of datasets through **one** pooled run state,
    /// binding each dataset once: the sweep-shaped API. Results are
    /// byte-identical to sequential [`Engine::run`] calls.
    ///
    /// # Errors
    ///
    /// Fail-fast: the first dataset that errors (binding, bad access,
    /// step limit) aborts the batch and returns its error.
    pub fn run_batch(&self, datasets: &[&DataSet]) -> Result<Vec<Execution>> {
        let mut state = self.checkout();
        let mut results = Vec::with_capacity(datasets.len());
        for data in datasets {
            let one = self.code.bind(data).and_then(|inputs| {
                self.code
                    .run_into(&mut state, &inputs, self.step_limit)
                    .map(|out| Execution {
                        profile: out.profile,
                        memory: self.code.materialize_memory(&state),
                        result: out.result,
                    })
            });
            match one {
                Ok(exec) => results.push(exec),
                Err(e) => {
                    self.checkin(state);
                    return Err(e);
                }
            }
        }
        self.checkin(state);
        Ok(results)
    }

    /// Run with an execution-trace observer (see [`crate::trace`]).
    /// Tracing is the diagnostic slow path: it uses a fresh state, not
    /// the pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_traced(&self, data: &DataSet, sink: &mut dyn TraceSink) -> Result<Execution> {
        self.code
            .execute_traced(&self.program, data, self.step_limit, sink)
    }

    /// This engine's run-state pool counters (sessions aggregate them
    /// into their cache stats).
    pub fn run_state_stats(&self) -> RunStateStats {
        RunStateStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            creates: self.creates.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{Operand, ProgramBuilder};

    fn sum_loop_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new("sumsq");
        let x = b.input_array("x", Ty::Int, n as usize);
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(header);
        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(n));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        let v = b.load(x, i.into());
        let sq = b.binary(BinOp::Mul, v.into(), v.into());
        let na = b.binary(BinOp::Add, acc.into(), sq.into());
        b.mov_to(acc, na.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        b.finish().expect("valid")
    }

    fn data() -> DataSet {
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        d
    }

    #[test]
    fn engine_matches_reference_on_a_loop() {
        let p = sum_loop_program(4);
        let reference = crate::reference::ReferenceSimulator::new(&p)
            .run(&data())
            .expect("runs");
        let engine = Engine::new(Arc::new(p));
        let decoded = engine.run(&data()).expect("runs");
        assert_eq!(decoded.result, Some(Value::Int(30)));
        assert_eq!(decoded.profile, reference.profile);
        assert_eq!(decoded.memory, reference.memory);
        assert_eq!(decoded.result, reference.result);
    }

    #[test]
    fn engine_is_reusable() {
        let engine = Engine::new(Arc::new(sum_loop_program(4)));
        let a = engine.run(&data()).expect("runs");
        let b = engine.run(&data()).expect("runs");
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.memory, b.memory);
        assert!(!engine.decoded().is_empty());
        // compare+branch fusion makes the decoded stream denser than
        // the source (this program fuses one back edge)
        assert!(engine.decoded().len() < engine.program().inst_count());
    }

    #[test]
    fn step_limit_parity_at_every_boundary() {
        // the engine's block-granular check must error (or not) at
        // exactly the same limits as the per-instruction reference
        let p = sum_loop_program(4);
        let total = Engine::new(Arc::new(p.clone()))
            .run(&data())
            .expect("runs")
            .profile
            .total_ops();
        for limit in (total.saturating_sub(3))..(total + 3) {
            let reference = crate::reference::ReferenceSimulator::new(&p)
                .with_step_limit(limit)
                .run(&data());
            let engine = Engine::new(Arc::new(p.clone()))
                .with_step_limit(limit)
                .run(&data());
            match (reference, engine) {
                (Ok(a), Ok(b)) => assert_eq!(a.profile, b.profile),
                (Err(a), Err(b)) => assert_eq!(a, b, "at limit {limit}"),
                (a, b) => panic!("diverged at limit {limit}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn data_error_beats_step_limit_like_the_reference() {
        // OOB at step 1, limit crossing at step 2: the careful loop
        // must surface the OOB first, like the reference
        let mut b = ProgramBuilder::new("oob");
        let x = b.input_array("x", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        let _ = b.load(x, Operand::imm_int(5));
        let _ = b.load(x, Operand::imm_int(0));
        b.ret(None);
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        let engine = Engine::new(Arc::new(p)).with_step_limit(2);
        assert!(matches!(
            engine.run(&d),
            Err(SimError::OutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn non_default_array_layout_uses_the_general_path() {
        // give the array a byte-addressed layout; decode must take the
        // general load/store variants and agree with the reference
        let mut p = sum_loop_program(4);
        p.arrays[0].base = 16;
        p.arrays[0].elem_size = 8;
        // the loop indexes elements 0..4 directly, which are no longer
        // valid addresses under the new layout — both paths must agree
        let reference = crate::reference::ReferenceSimulator::new(&p).run(&data());
        let engine = Engine::new(Arc::new(p)).run(&data());
        assert_eq!(reference, engine);
        assert!(matches!(engine, Err(SimError::OutOfBounds { .. })));
    }

    #[test]
    fn mixed_type_programs_route_through_both_banks() {
        // int loop counter, float accumulation, conversions both ways
        let mut b = ProgramBuilder::new("mixed");
        let x = b.input_array("x", Ty::Float, 4);
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let v0 = b.load(x, Operand::imm_int(0));
        let v1 = b.load(x, Operand::imm_int(1));
        let s = b.binary(BinOp::FAdd, v0.into(), v1.into());
        let d = b.binary(BinOp::FMul, s.into(), Operand::imm_float(2.0));
        let c = b.binary(BinOp::FCmpGt, d.into(), Operand::imm_float(1.0));
        let i = b.unary(UnOp::FloatToInt, d.into());
        let sum = b.binary(BinOp::Add, i.into(), c.into());
        b.store(y, Operand::imm_int(0), sum.into());
        b.ret(Some(sum.into()));
        let p = b.finish().expect("valid");
        let mut data = DataSet::new();
        data.bind_floats("x", vec![1.25, 2.5, 0.0, 0.0]);
        let reference = crate::reference::ReferenceSimulator::new(&p)
            .run(&data)
            .expect("runs");
        let engine = Engine::new(Arc::new(p)).run(&data).expect("runs");
        assert_eq!(engine.result, Some(Value::Int(8)));
        assert_eq!(engine.profile, reference.profile);
        assert_eq!(engine.memory, reference.memory);
        assert_eq!(engine.result, reference.result);
    }

    #[test]
    fn constants_are_pooled_per_bank() {
        let p = sum_loop_program(4);
        let engine = Engine::new(Arc::new(p));
        let int_regs = engine
            .program()
            .reg_types
            .iter()
            .filter(|&&t| t == Ty::Int)
            .count();
        let int_array_elems: usize = engine
            .program()
            .arrays
            .iter()
            .filter(|a| a.ty == Ty::Int)
            .map(|a| a.len)
            .sum();
        // arena layout is [arrays][registers][constants]
        let consts = engine.code.image_ints.len() - int_array_elems - int_regs;
        assert!(consts >= 2, "int constant pool materialized ({consts})");
        let a = engine.run(&data()).expect("runs");
        let b = engine.run(&data()).expect("runs");
        assert_eq!(a.result, b.result, "pool state survives reuse");
    }

    #[test]
    fn pooled_run_states_are_reused() {
        let engine = Engine::new(Arc::new(sum_loop_program(4)));
        let d = data();
        let inputs = engine.bind(&d).expect("binds");
        let mut last = None;
        for _ in 0..8 {
            last = Some(engine.run_pooled(&inputs).expect("runs"));
        }
        let full = engine.run(&d).expect("runs");
        let out = last.expect("ran");
        assert_eq!(out.profile, full.profile);
        assert_eq!(out.result, full.result);
        let stats = engine.run_state_stats();
        assert_eq!(stats.checkouts, 9);
        assert_eq!(stats.creates, 1, "one allocation serves the whole sweep");
    }

    #[test]
    fn run_batch_matches_sequential_runs() {
        let engine = Engine::new(Arc::new(sum_loop_program(4)));
        let d1 = data();
        let mut d2 = DataSet::new();
        d2.bind_ints("x", vec![4, 3, 2, 1]);
        let batch = engine.run_batch(&[&d1, &d2]).expect("runs");
        assert_eq!(batch.len(), 2);
        for (b, d) in batch.iter().zip([&d1, &d2]) {
            let s = engine.run(d).expect("runs");
            assert_eq!(b.profile, s.profile);
            assert_eq!(b.memory, s.memory);
            assert_eq!(b.result, s.result);
        }
    }

    #[test]
    fn faulted_state_does_not_leak_into_the_next_run() {
        // an OOB mid-run leaves partial writes in the pooled state; the
        // next run of the same engine must be byte-identical to a
        // fresh engine's (reset-by-memcpy scrubs everything)
        let mut b = ProgramBuilder::new("poison");
        let x = b.input_array("x", Ty::Int, 2);
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let i = b.load(x, Operand::imm_int(0));
        b.store(y, Operand::imm_int(0), Operand::imm_int(7));
        let v = b.load(x, i.into());
        b.ret(Some(v.into()));
        let p = b.finish().expect("valid");
        let mut bad = DataSet::new();
        bad.bind_ints("x", vec![5, 0]);
        let mut good = DataSet::new();
        good.bind_ints("x", vec![1, 9]);
        let engine = Engine::new(Arc::new(p.clone()));
        assert!(matches!(
            engine.run(&bad),
            Err(SimError::OutOfBounds { index: 5, .. })
        ));
        let reused = engine.run(&good).expect("runs");
        let fresh = Engine::new(Arc::new(p)).run(&good).expect("runs");
        assert_eq!(reused.profile, fresh.profile);
        assert_eq!(reused.memory, fresh.memory);
        assert_eq!(reused.result, fresh.result);
    }

    #[test]
    fn addr_arith_and_mov_fusion_match_the_reference() {
        // an add feeding a direct load fuses (IntBinLoadInt /
        // IntBinLoadFloat), as does a bin-op result mov'd onward
        // (IntBinMov / FloatBinMov); everything observable must stay
        // byte-identical to the reference interpreter
        let mut b = ProgramBuilder::new("fused");
        let x = b.input_array("x", Ty::Int, 4);
        let f = b.input_array("f", Ty::Float, 4);
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let i = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        let v = b.load(x, i.into()); // fuses: add + int load
        let j = b.binary(BinOp::Sub, i.into(), Operand::imm_int(3));
        let w = b.load(f, j.into()); // fuses: sub + float load
        let s = b.binary(BinOp::Mul, v.into(), Operand::imm_int(2));
        let t = b.new_reg(Ty::Int);
        b.mov_to(t, s.into()); // fuses: mul + mov
        let g = b.binary(BinOp::FAdd, w.into(), w.into());
        let h = b.new_reg(Ty::Float);
        b.mov_to(h, g.into()); // fuses: fadd + mov
        let k = b.unary(UnOp::FloatToInt, h.into());
        let sum = b.binary(BinOp::Add, t.into(), k.into());
        b.store(y, Operand::imm_int(0), sum.into());
        b.ret(Some(sum.into()));
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![10, 20, 30, 40]);
        d.bind_floats("f", vec![0.5, 1.5, 2.5, 3.5]);
        let engine = Engine::new(Arc::new(p.clone()));
        // all four fusion kinds fired: four pairs collapsed
        assert_eq!(engine.decoded().len(), p.inst_count() - 4);
        let decoded = engine.run(&d).expect("runs");
        let reference = crate::reference::ReferenceSimulator::new(&p)
            .run(&d)
            .expect("runs");
        assert_eq!(decoded.profile, reference.profile);
        assert_eq!(decoded.memory, reference.memory);
        assert_eq!(decoded.result, reference.result);
        // and step-limit parity holds across every fused boundary
        let total = decoded.profile.total_ops();
        for limit in 0..=total {
            let r = crate::reference::ReferenceSimulator::new(&p)
                .with_step_limit(limit)
                .run(&d);
            let e = Engine::new(Arc::new(p.clone()))
                .with_step_limit(limit)
                .run(&d);
            match (r, e) {
                (Ok(a), Ok(b)) => assert_eq!(a.profile, b.profile),
                (Err(a), Err(b)) => assert_eq!(a, b, "at limit {limit}"),
                (a, b) => panic!("diverged at limit {limit}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn fused_oob_reports_the_reference_error() {
        // the fused address-arith+load bounds check must surface the
        // same OOB payload as the unfused reference path
        let mut b = ProgramBuilder::new("fused-oob");
        let x = b.input_array("x", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        let i = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(4));
        let v = b.load(x, i.into()); // fuses, address 5 misses
        b.ret(Some(v.into()));
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        let reference = crate::reference::ReferenceSimulator::new(&p).run(&d);
        let engine = Engine::new(Arc::new(p)).run(&d);
        assert_eq!(reference, engine);
        assert!(matches!(
            engine,
            Err(SimError::OutOfBounds {
                index: 5,
                len: 2,
                ..
            })
        ));
    }
}
