//! Execution tracing: an optional per-step observer for debugging
//! benchmarks and verifying rewrites op by op.

use asip_ir::{BlockId, Inst, Value};

/// One executed step, as seen by a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent<'a> {
    /// 1-based dynamic step number.
    pub step: u64,
    /// Block being executed.
    pub block: BlockId,
    /// The instruction.
    pub inst: &'a Inst,
    /// Value written to the destination register, if any.
    pub wrote: Option<Value>,
}

/// Receives every executed instruction.
///
/// Keep implementations cheap — the simulator calls this once per
/// dynamic operation.
pub trait TraceSink {
    /// Observe one step.
    fn event(&mut self, event: &TraceEvent<'_>);
}

/// A sink that retains the last `capacity` events (a flight recorder).
#[derive(Debug, Clone)]
pub struct RingTrace {
    capacity: usize,
    events: std::collections::VecDeque<OwnedEvent>,
}

/// An owned copy of a trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Dynamic step number.
    pub step: u64,
    /// Block id.
    pub block: BlockId,
    /// Rendered instruction text.
    pub inst: String,
    /// Value written, if any.
    pub wrote: Option<Value>,
}

impl RingTrace {
    /// A flight recorder keeping the last `capacity` steps.
    pub fn new(capacity: usize) -> Self {
        RingTrace {
            capacity,
            events: std::collections::VecDeque::with_capacity(capacity),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &OwnedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingTrace {
    fn event(&mut self, event: &TraceEvent<'_>) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(OwnedEvent {
            step: event.step,
            block: event.block,
            inst: asip_ir::print::DisplayInst(event.inst).to_string(),
            wrote: event.wrote,
        });
    }
}

/// A sink that counts per-class execution (a quick dynamic mix profile).
#[derive(Debug, Clone, Default)]
pub struct ClassMix {
    counts: std::collections::BTreeMap<String, u64>,
    arrays_float: Vec<bool>,
}

impl ClassMix {
    /// A mix counter for a program (needs the array element types to
    /// classify loads/stores).
    pub fn for_program(program: &asip_ir::Program) -> Self {
        ClassMix {
            counts: Default::default(),
            arrays_float: program
                .arrays
                .iter()
                .map(|a| a.ty == asip_ir::Ty::Float)
                .collect(),
        }
    }

    /// Dynamic count per op-class name.
    pub fn counts(&self) -> &std::collections::BTreeMap<String, u64> {
        &self.counts
    }
}

impl TraceSink for ClassMix {
    fn event(&mut self, event: &TraceEvent<'_>) {
        let class = event
            .inst
            .class_with(|a| self.arrays_float.get(a.index()).copied().unwrap_or(false));
        *self.counts.entry(class.to_string()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataSet, Simulator};
    use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};

    fn program() -> asip_ir::Program {
        let mut b = ProgramBuilder::new("t");
        let x = b.input_array("x", Ty::Int, 4);
        let e = b.entry_block();
        b.select_block(e);
        let v = b.load(x, Operand::imm_int(0));
        let w = b.binary(BinOp::Mul, v.into(), Operand::imm_int(3));
        b.ret(Some(w.into()));
        b.finish().expect("valid")
    }

    fn data() -> DataSet {
        let mut d = DataSet::new();
        d.bind_ints("x", vec![7, 0, 0, 0]);
        d
    }

    #[test]
    fn ring_trace_records_steps_in_order() {
        let p = program();
        let mut trace = RingTrace::new(16);
        Simulator::new(&p)
            .run_traced(&data(), &mut trace)
            .expect("runs");
        assert_eq!(trace.len(), 3);
        let steps: Vec<u64> = trace.events().map(|e| e.step).collect();
        assert_eq!(steps, vec![1, 2, 3]);
        let texts: Vec<&str> = trace.events().map(|e| e.inst.as_str()).collect();
        assert!(texts[0].contains("load"));
        assert!(texts[1].contains("mul"));
        assert!(texts[2].contains("ret"));
        // the multiply wrote 21
        assert_eq!(
            trace.events().nth(1).expect("exists").wrote,
            Some(asip_ir::Value::Int(21))
        );
    }

    #[test]
    fn ring_trace_caps_capacity() {
        let p = program();
        let mut trace = RingTrace::new(2);
        Simulator::new(&p)
            .run_traced(&data(), &mut trace)
            .expect("runs");
        assert_eq!(trace.len(), 2);
        // keeps the *last* two
        let steps: Vec<u64> = trace.events().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 3]);
        assert!(!trace.is_empty());
    }

    #[test]
    fn class_mix_counts_dynamic_classes() {
        let p = program();
        let mut mix = ClassMix::for_program(&p);
        Simulator::new(&p)
            .run_traced(&data(), &mut mix)
            .expect("runs");
        assert_eq!(mix.counts().get("load"), Some(&1));
        assert_eq!(mix.counts().get("multiply"), Some(&1));
        assert_eq!(mix.counts().get("branch"), Some(&1)); // the ret
    }

    #[test]
    fn traced_and_untraced_agree() {
        let p = program();
        let plain = Simulator::new(&p).run(&data()).expect("runs");
        let mut trace = RingTrace::new(8);
        let traced = Simulator::new(&p)
            .run_traced(&data(), &mut trace)
            .expect("runs");
        assert_eq!(plain.result, traced.result);
        assert_eq!(plain.profile, traced.profile);
    }
}
