//! The retained walk-the-IR reference interpreter.
//!
//! This is the original per-instruction enum-dispatch interpreter the
//! pre-decoded engine ([`crate::decode`]) replaced on the hot path. It
//! is kept as the *executable specification* of the machine model: the
//! differential test suite asserts that [`crate::Simulator`] (now a
//! facade over the decoded engine) produces byte-identical profiles,
//! memories, results and trace streams for every Table-1 benchmark and
//! for randomly generated programs.
//!
//! It is deliberately boring: one `match` per executed instruction,
//! straight off the IR, with per-step limit checks and bump-per-
//! instruction profiling. Any observable divergence between this and
//! the engine is a bug in the engine.

use crate::data::DataSet;
use crate::error::{Result, SimError};
use crate::machine::{eval_binop, eval_unop, Execution, DEFAULT_STEP_LIMIT};
use crate::profile::Profile;
use asip_ir::{ArrayKind, Inst, InstKind, Operand, Program, Reg, Ty, Value};

/// The reference profiling interpreter for one [`Program`].
///
/// Same machine model and public contract as [`crate::Simulator`]; see
/// the [module docs](self) for why it exists.
#[derive(Debug)]
pub struct ReferenceSimulator<'p> {
    program: &'p Program,
    step_limit: u64,
}

impl<'p> ReferenceSimulator<'p> {
    /// Create a reference simulator with the default step limit.
    pub fn new(program: &'p Program) -> Self {
        ReferenceSimulator {
            program,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Override the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Run the program on the given input data.
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::Simulator::run`].
    pub fn run(&self, data: &DataSet) -> Result<Execution> {
        self.run_inner(data, None)
    }

    /// Run with an execution-trace observer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReferenceSimulator::run`].
    pub fn run_traced(
        &self,
        data: &DataSet,
        sink: &mut dyn crate::trace::TraceSink,
    ) -> Result<Execution> {
        self.run_inner(data, Some(sink))
    }

    fn run_inner(
        &self,
        data: &DataSet,
        mut sink: Option<&mut dyn crate::trace::TraceSink>,
    ) -> Result<Execution> {
        let program = self.program;
        let mut memory: Vec<Vec<Value>> = Vec::with_capacity(program.arrays.len());
        for decl in &program.arrays {
            match decl.kind {
                ArrayKind::Input => {
                    let bound = data.get(&decl.name).ok_or_else(|| SimError::UnboundInput {
                        name: decl.name.clone(),
                    })?;
                    if bound.len() != decl.len {
                        return Err(SimError::WrongLength {
                            name: decl.name.clone(),
                            expected: decl.len,
                            got: bound.len(),
                        });
                    }
                    if bound.iter().any(|v| v.ty() != decl.ty) {
                        return Err(SimError::WrongType {
                            name: decl.name.clone(),
                        });
                    }
                    memory.push(bound.to_vec());
                }
                ArrayKind::Output | ArrayKind::Internal => {
                    memory.push(vec![Value::zero(decl.ty); decl.len]);
                }
            }
        }

        let mut regs: Vec<Value> = program.reg_types.iter().map(|&t| Value::zero(t)).collect();
        let mut profile = Profile::new(program.next_inst_id as usize, program.blocks.len());
        let mut steps: u64 = 0;
        let mut block = program.entry;

        'outer: loop {
            profile.bump_block(block);
            let insts = &program.block(block).insts;
            for inst in insts {
                steps += 1;
                if steps > self.step_limit {
                    return Err(SimError::StepLimit {
                        limit: self.step_limit,
                    });
                }
                profile.bump_inst(inst.id);
                let flow = self.step(inst, &mut regs, &mut memory)?;
                if let Some(sink) = sink.as_deref_mut() {
                    sink.event(&crate::trace::TraceEvent {
                        step: steps,
                        block,
                        inst,
                        wrote: inst.dst().map(|d| regs[d.index()]),
                    });
                }
                match flow {
                    Flow::Next => {}
                    Flow::Goto(b) => {
                        block = b;
                        continue 'outer;
                    }
                    Flow::Halt(v) => {
                        return Ok(Execution {
                            profile,
                            memory,
                            result: v,
                        })
                    }
                }
            }
            // validation guarantees a terminator, so this is unreachable
            unreachable!("block fell through without terminator");
        }
    }

    fn step(&self, inst: &Inst, regs: &mut [Value], memory: &mut [Vec<Value>]) -> Result<Flow> {
        let read = |o: &Operand, regs: &[Value]| -> Value {
            match o {
                Operand::Reg(r) => regs[r.index()],
                Operand::ImmInt(v) => Value::Int(*v),
                Operand::ImmFloat(v) => Value::Float(*v),
            }
        };
        let write = |r: Reg, v: Value, regs: &mut [Value]| {
            regs[r.index()] = v;
        };

        match &inst.kind {
            InstKind::Binary { op, dst, lhs, rhs } => {
                let a = read(lhs, regs);
                let b = read(rhs, regs);
                write(*dst, eval_binop(*op, a, b), regs);
                Ok(Flow::Next)
            }
            InstKind::Unary { op, dst, src } => {
                let v = read(src, regs);
                write(*dst, eval_unop(*op, v), regs);
                Ok(Flow::Next)
            }
            InstKind::Load { dst, array, index } => {
                let addr = read(index, regs).as_int();
                let decl = self.program.array(*array);
                let mem = &memory[array.index()];
                let slot = decl.element_of(addr).ok_or_else(|| SimError::OutOfBounds {
                    name: decl.name.clone(),
                    index: addr,
                    len: mem.len(),
                })?;
                let v = mem[slot];
                write(*dst, v, regs);
                Ok(Flow::Next)
            }
            InstKind::Store {
                array,
                index,
                value,
            } => {
                let addr = read(index, regs).as_int();
                let v = read(value, regs);
                let decl = self.program.array(*array);
                let len = memory[array.index()].len();
                let slot = decl.element_of(addr).ok_or_else(|| SimError::OutOfBounds {
                    name: decl.name.clone(),
                    index: addr,
                    len,
                })?;
                let mem = &mut memory[array.index()];
                // stores coerce to the array element type, like C
                mem[slot] = match self.program.array(*array).ty {
                    Ty::Int => Value::Int(v.as_int()),
                    Ty::Float => Value::Float(v.as_float()),
                };
                Ok(Flow::Next)
            }
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            } => {
                let c = read(cond, regs);
                Ok(Flow::Goto(if c.is_truthy() {
                    *then_target
                } else {
                    *else_target
                }))
            }
            InstKind::Jump { target } => Ok(Flow::Goto(*target)),
            InstKind::Ret { value } => Ok(Flow::Halt(value.as_ref().map(|v| read(v, regs)))),
            InstKind::Chained {
                dst, inputs, ops, ..
            } => {
                // the contract shared with asip-synth's rewriter:
                // acc = ops[0](inputs[0], inputs[1]);
                // acc = ops[i](acc, inputs[i + 1]) for the rest
                let zero = Operand::ImmInt(0);
                let a = read(inputs.first().unwrap_or(&zero), regs);
                let b = read(inputs.get(1).unwrap_or(&zero), regs);
                let mut acc = match ops.first() {
                    Some(&op) => eval_binop(op, a, b),
                    None => a,
                };
                for (op, i) in ops.iter().skip(1).zip(inputs.iter().skip(2)) {
                    acc = eval_binop(*op, acc, read(i, regs));
                }
                write(*dst, acc, regs);
                Ok(Flow::Next)
            }
        }
    }
}

enum Flow {
    Next,
    Goto(asip_ir::BlockId),
    Halt(Option<Value>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, ProgramBuilder};

    #[test]
    fn reference_still_computes() {
        let mut b = ProgramBuilder::new("t");
        let x = b.input_array("x", Ty::Int, 2);
        let e = b.entry_block();
        b.select_block(e);
        let v = b.load(x, Operand::imm_int(0));
        let w = b.binary(BinOp::Mul, v.into(), Operand::imm_int(3));
        b.ret(Some(w.into()));
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![7, 0]);
        let e = ReferenceSimulator::new(&p).run(&d).expect("runs");
        assert_eq!(e.result, Some(Value::Int(21)));
        assert_eq!(e.profile.total_ops(), 3);
    }
}
