//! # asip-sim
//!
//! A deterministic interpreter and profiler for [`asip_ir`] programs.
//!
//! This is the "Simulator / Profiler" of the paper's Figure 2 (step 2): it
//! executes the unoptimized 3-address code on sample input data and
//! attaches a dynamic execution count to every static instruction. The
//! optimizer and the sequence detection analyzer consume those counts as
//! the *dynamic frequency* weights of the paper's result tables.
//!
//! Execution goes through the pre-decoded engine in [`decode`]: the
//! program is lowered once into a dense slot-indexed instruction array
//! and the hot loop runs over copy-only structs with block-granular
//! step accounting and profiles derived from block entry counts. All
//! per-run data lives in an arena-backed, pooled [`RunState`] that is
//! reset by `memcpy` — batch and sweep callers ([`Engine::run_batch`],
//! [`Engine::run_pooled`], [`Engine::bind`]) pay zero per-run
//! allocations. [`Simulator`] is the borrowing one-shot facade;
//! [`Engine`] owns its program and amortizes the decode over many
//! runs; the original walk-the-IR interpreter is retained in
//! [`mod@reference`] as the executable specification the differential
//! tests compare against.
//!
//! ## Example
//!
//! ```
//! use asip_sim::{DataSet, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = build_program()?;
//! let mut data = DataSet::new();
//! data.bind_ints("x", vec![1, 2, 3, 4]);
//! let exec = Simulator::new(&program).run(&data)?;
//! assert!(exec.profile.total_ops() > 0);
//! # Ok(())
//! # }
//! # fn build_program() -> Result<asip_ir::Program, asip_ir::IrError> {
//! #     use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
//! #     let mut b = ProgramBuilder::new("t");
//! #     let x = b.input_array("x", Ty::Int, 4);
//! #     let e = b.entry_block();
//! #     b.select_block(e);
//! #     let v = b.load(x, Operand::imm_int(0));
//! #     let _ = b.binary(BinOp::Add, v.into(), Operand::imm_int(1));
//! #     b.ret(None);
//! #     b.finish()
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod decode;
pub mod error;
pub mod machine;
pub mod profile;
pub mod reference;
pub mod trace;

pub use data::{DataGen, DataSet};
pub use decode::{BoundInputs, DecodedProgram, Engine, RunOutcome, RunState, RunStateStats};
pub use error::{Result, SimError};
pub use machine::{Execution, Simulator};
pub use profile::Profile;
pub use reference::ReferenceSimulator;
pub use trace::{ClassMix, RingTrace, TraceEvent, TraceSink};
