//! The interpreter proper.

use crate::data::DataSet;
use crate::error::{Result, SimError};
use crate::profile::Profile;
use asip_ir::{ArrayKind, BinOp, Inst, InstKind, Operand, Program, Reg, Ty, UnOp, Value};

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Dynamic counts per instruction and block.
    pub profile: Profile,
    /// Final contents of every array (indexable by the program's array
    /// order), so harnesses can check outputs.
    pub memory: Vec<Vec<Value>>,
    /// Value returned by the program's `ret`, if any.
    pub result: Option<Value>,
}

impl Execution {
    /// Final contents of a named array.
    pub fn array(&self, program: &Program, name: &str) -> Option<&[Value]> {
        program
            .array_by_name(name)
            .map(|id| self.memory[id.index()].as_slice())
    }
}

/// A profiling interpreter for one [`Program`].
///
/// The machine model is the paper's: one operation per cycle, unbounded
/// virtual registers, word-addressed array memory. Division by zero
/// yields zero (integer) or IEEE semantics (float) so random-data
/// benchmarks never trap.
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    step_limit: u64,
}

impl<'p> Simulator<'p> {
    /// Create a simulator with the default step limit (100 million ops).
    pub fn new(program: &'p Program) -> Self {
        Simulator {
            program,
            step_limit: 100_000_000,
        }
    }

    /// Override the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Run the program on the given input data.
    ///
    /// # Errors
    ///
    /// - [`SimError::UnboundInput`] / [`SimError::WrongLength`] /
    ///   [`SimError::WrongType`] if the data set does not match the
    ///   program's input declarations;
    /// - [`SimError::OutOfBounds`] on a bad array access;
    /// - [`SimError::StepLimit`] if execution runs away.
    pub fn run(&self, data: &DataSet) -> Result<Execution> {
        self.run_inner(data, None)
    }

    /// Run with an execution-trace observer (see [`crate::trace`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(
        &self,
        data: &DataSet,
        sink: &mut dyn crate::trace::TraceSink,
    ) -> Result<Execution> {
        self.run_inner(data, Some(sink))
    }

    fn run_inner(
        &self,
        data: &DataSet,
        mut sink: Option<&mut dyn crate::trace::TraceSink>,
    ) -> Result<Execution> {
        let program = self.program;
        let mut memory: Vec<Vec<Value>> = Vec::with_capacity(program.arrays.len());
        for decl in &program.arrays {
            match decl.kind {
                ArrayKind::Input => {
                    let bound = data.get(&decl.name).ok_or_else(|| SimError::UnboundInput {
                        name: decl.name.clone(),
                    })?;
                    if bound.len() != decl.len {
                        return Err(SimError::WrongLength {
                            name: decl.name.clone(),
                            expected: decl.len,
                            got: bound.len(),
                        });
                    }
                    if bound.iter().any(|v| v.ty() != decl.ty) {
                        return Err(SimError::WrongType {
                            name: decl.name.clone(),
                        });
                    }
                    memory.push(bound.to_vec());
                }
                ArrayKind::Output | ArrayKind::Internal => {
                    memory.push(vec![Value::zero(decl.ty); decl.len]);
                }
            }
        }

        let mut regs: Vec<Value> = program.reg_types.iter().map(|&t| Value::zero(t)).collect();
        let mut profile = Profile::new(program.next_inst_id as usize, program.blocks.len());
        let mut steps: u64 = 0;
        let mut block = program.entry;

        'outer: loop {
            profile.bump_block(block);
            let insts = &program.block(block).insts;
            for inst in insts {
                steps += 1;
                if steps > self.step_limit {
                    return Err(SimError::StepLimit {
                        limit: self.step_limit,
                    });
                }
                profile.bump_inst(inst.id);
                let flow = self.step(inst, &mut regs, &mut memory)?;
                if let Some(sink) = sink.as_deref_mut() {
                    sink.event(&crate::trace::TraceEvent {
                        step: steps,
                        block,
                        inst,
                        wrote: inst.dst().map(|d| regs[d.index()]),
                    });
                }
                match flow {
                    Flow::Next => {}
                    Flow::Goto(b) => {
                        block = b;
                        continue 'outer;
                    }
                    Flow::Halt(v) => {
                        return Ok(Execution {
                            profile,
                            memory,
                            result: v,
                        })
                    }
                }
            }
            // validation guarantees a terminator, so this is unreachable
            unreachable!("block fell through without terminator");
        }
    }

    fn step(&self, inst: &Inst, regs: &mut [Value], memory: &mut [Vec<Value>]) -> Result<Flow> {
        let read = |o: &Operand, regs: &[Value]| -> Value {
            match o {
                Operand::Reg(r) => regs[r.index()],
                Operand::ImmInt(v) => Value::Int(*v),
                Operand::ImmFloat(v) => Value::Float(*v),
            }
        };
        let write = |r: Reg, v: Value, regs: &mut [Value]| {
            regs[r.index()] = v;
        };

        match &inst.kind {
            InstKind::Binary { op, dst, lhs, rhs } => {
                let a = read(lhs, regs);
                let b = read(rhs, regs);
                write(*dst, eval_binop(*op, a, b), regs);
                Ok(Flow::Next)
            }
            InstKind::Unary { op, dst, src } => {
                let v = read(src, regs);
                write(*dst, eval_unop(*op, v), regs);
                Ok(Flow::Next)
            }
            InstKind::Load { dst, array, index } => {
                let addr = read(index, regs).as_int();
                let decl = self.program.array(*array);
                let mem = &memory[array.index()];
                let slot = decl.element_of(addr).ok_or_else(|| SimError::OutOfBounds {
                    name: decl.name.clone(),
                    index: addr,
                    len: mem.len(),
                })?;
                let v = mem[slot];
                write(*dst, v, regs);
                Ok(Flow::Next)
            }
            InstKind::Store {
                array,
                index,
                value,
            } => {
                let addr = read(index, regs).as_int();
                let v = read(value, regs);
                let decl = self.program.array(*array);
                let len = memory[array.index()].len();
                let slot = decl.element_of(addr).ok_or_else(|| SimError::OutOfBounds {
                    name: decl.name.clone(),
                    index: addr,
                    len,
                })?;
                let mem = &mut memory[array.index()];
                // stores coerce to the array element type, like C
                mem[slot] = match self.program.array(*array).ty {
                    Ty::Int => Value::Int(v.as_int()),
                    Ty::Float => Value::Float(v.as_float()),
                };
                Ok(Flow::Next)
            }
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            } => {
                let c = read(cond, regs);
                Ok(Flow::Goto(if c.is_truthy() {
                    *then_target
                } else {
                    *else_target
                }))
            }
            InstKind::Jump { target } => Ok(Flow::Goto(*target)),
            InstKind::Ret { value } => Ok(Flow::Halt(value.as_ref().map(|v| read(v, regs)))),
            InstKind::Chained {
                dst, inputs, ops, ..
            } => {
                // the contract shared with asip-synth's rewriter:
                // acc = ops[0](inputs[0], inputs[1]);
                // acc = ops[i](acc, inputs[i + 1]) for the rest
                let zero = Operand::ImmInt(0);
                let a = read(inputs.first().unwrap_or(&zero), regs);
                let b = read(inputs.get(1).unwrap_or(&zero), regs);
                let mut acc = match ops.first() {
                    Some(&op) => eval_binop(op, a, b),
                    None => a,
                };
                for (op, i) in ops.iter().skip(1).zip(inputs.iter().skip(2)) {
                    acc = eval_binop(*op, acc, read(i, regs));
                }
                write(*dst, acc, regs);
                Ok(Flow::Next)
            }
        }
    }
}

enum Flow {
    Next,
    Goto(asip_ir::BlockId),
    Halt(Option<Value>),
}

/// Evaluate a binary operation with C-like semantics.
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    match op {
        Add => Value::Int(a.as_int().wrapping_add(b.as_int())),
        Sub => Value::Int(a.as_int().wrapping_sub(b.as_int())),
        Mul => Value::Int(a.as_int().wrapping_mul(b.as_int())),
        Div => {
            let d = b.as_int();
            Value::Int(if d == 0 {
                0
            } else {
                a.as_int().wrapping_div(d)
            })
        }
        Rem => {
            let d = b.as_int();
            Value::Int(if d == 0 {
                0
            } else {
                a.as_int().wrapping_rem(d)
            })
        }
        Shl => Value::Int(a.as_int().wrapping_shl((b.as_int() & 63) as u32)),
        Shr => Value::Int(a.as_int().wrapping_shr((b.as_int() & 63) as u32)),
        And => Value::Int(a.as_int() & b.as_int()),
        Or => Value::Int(a.as_int() | b.as_int()),
        Xor => Value::Int(a.as_int() ^ b.as_int()),
        CmpLt => Value::Int((a.as_int() < b.as_int()) as i64),
        CmpLe => Value::Int((a.as_int() <= b.as_int()) as i64),
        CmpGt => Value::Int((a.as_int() > b.as_int()) as i64),
        CmpGe => Value::Int((a.as_int() >= b.as_int()) as i64),
        CmpEq => Value::Int((a.as_int() == b.as_int()) as i64),
        CmpNe => Value::Int((a.as_int() != b.as_int()) as i64),
        FAdd => Value::Float(a.as_float() + b.as_float()),
        FSub => Value::Float(a.as_float() - b.as_float()),
        FMul => Value::Float(a.as_float() * b.as_float()),
        FDiv => Value::Float(a.as_float() / b.as_float()),
        FCmpLt => Value::Int((a.as_float() < b.as_float()) as i64),
        FCmpLe => Value::Int((a.as_float() <= b.as_float()) as i64),
        FCmpGt => Value::Int((a.as_float() > b.as_float()) as i64),
        FCmpGe => Value::Int((a.as_float() >= b.as_float()) as i64),
        FCmpEq => Value::Int((a.as_float() == b.as_float()) as i64),
        FCmpNe => Value::Int((a.as_float() != b.as_float()) as i64),
    }
}

/// Evaluate a unary operation.
pub fn eval_unop(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Neg => Value::Int(v.as_int().wrapping_neg()),
        UnOp::Not => Value::Int(!v.as_int()),
        UnOp::FNeg => Value::Float(-v.as_float()),
        UnOp::Mov => v,
        UnOp::IntToFloat => Value::Float(v.as_int() as f64),
        UnOp::FloatToInt => Value::Int(v.as_float() as i64),
        UnOp::Math(m) => Value::Float(m.eval(v.as_float())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{Operand, ProgramBuilder};

    fn sum_loop_program(n: i64) -> Program {
        // acc = sum_{i<n} x[i]*x[i]
        let mut b = ProgramBuilder::new("sumsq");
        let x = b.input_array("x", Ty::Int, n as usize);
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(header);
        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(n));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        let v = b.load(x, i.into());
        let sq = b.binary(BinOp::Mul, v.into(), v.into());
        let na = b.binary(BinOp::Add, acc.into(), sq.into());
        b.mov_to(acc, na.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        b.finish().expect("valid")
    }

    #[test]
    fn computes_sum_of_squares() {
        let p = sum_loop_program(4);
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        let e = Simulator::new(&p).run(&d).expect("runs");
        assert_eq!(e.result, Some(Value::Int(1 + 4 + 9 + 16)));
    }

    #[test]
    fn profile_counts_match_loop_structure() {
        let p = sum_loop_program(4);
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        let e = Simulator::new(&p).run(&d).expect("runs");
        // header executes 5 times (4 taken + 1 exit), body 4
        assert_eq!(e.profile.block_count(asip_ir::BlockId(1)), 5);
        assert_eq!(e.profile.block_count(asip_ir::BlockId(2)), 4);
        // the multiply runs once per body iteration
        let mul_id = p.blocks()[2].insts[1].id;
        assert_eq!(e.profile.count(mul_id), 4);
        // total = 3 (entry) + 5*2 (header) + 4*7 (body) + 1 (ret)
        assert_eq!(e.profile.total_ops(), 3 + 10 + 28 + 1);
    }

    #[test]
    fn rejects_missing_and_mismatched_inputs() {
        let p = sum_loop_program(4);
        let d = DataSet::new();
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::UnboundInput { .. })
        ));
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::WrongLength { .. })
        ));
        let mut d = DataSet::new();
        d.bind_floats("x", vec![1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::WrongType { .. })
        ));
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        // while (1) {}
        let mut b = ProgramBuilder::new("hang");
        let entry = b.entry_block();
        b.select_block(entry);
        b.jump(entry);
        let p = b.finish().expect("valid");
        let err = Simulator::new(&p)
            .with_step_limit(1000)
            .run(&DataSet::new());
        assert!(matches!(err, Err(SimError::StepLimit { limit: 1000 })));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = ProgramBuilder::new("oob");
        let x = b.input_array("x", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        let _ = b.load(x, Operand::imm_int(5));
        b.ret(None);
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::OutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            eval_binop(BinOp::Div, Value::Int(7), Value::Int(2)),
            Value::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Value::Int(7), Value::Int(0)),
            Value::Int(0),
            "integer division by zero yields zero"
        );
        assert_eq!(
            eval_binop(BinOp::Rem, Value::Int(7), Value::Int(0)),
            Value::Int(0)
        );
        let inf = eval_binop(BinOp::FDiv, Value::Float(1.0), Value::Float(0.0));
        assert_eq!(inf, Value::Float(f64::INFINITY));
    }

    #[test]
    fn comparison_and_float_ops() {
        assert_eq!(
            eval_binop(BinOp::CmpLt, Value::Int(1), Value::Int(2)),
            Value::Int(1)
        );
        assert_eq!(
            eval_binop(BinOp::FCmpGe, Value::Float(2.0), Value::Float(2.0)),
            Value::Int(1)
        );
        assert_eq!(
            eval_binop(BinOp::FMul, Value::Float(1.5), Value::Float(2.0)),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_unop(UnOp::FloatToInt, Value::Float(-2.9)),
            Value::Int(-2)
        );
        assert_eq!(eval_unop(UnOp::Mov, Value::Float(1.25)), Value::Float(1.25));
    }

    #[test]
    fn outputs_are_observable() {
        let mut b = ProgramBuilder::new("out");
        let y = b.output_array("y", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        b.store(y, Operand::imm_int(0), Operand::imm_int(42));
        b.store(y, Operand::imm_int(1), Operand::imm_int(7));
        b.ret(None);
        let p = b.finish().expect("valid");
        let e = Simulator::new(&p).run(&DataSet::new()).expect("runs");
        assert_eq!(e.array(&p, "y"), Some(&[Value::Int(42), Value::Int(7)][..]));
    }

    #[test]
    fn stores_coerce_to_element_type() {
        let mut b = ProgramBuilder::new("coerce");
        let y = b.output_array("y", Ty::Float, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        b.store(y, Operand::imm_int(0), Operand::imm_float(2.5));
        b.ret(None);
        let p = b.finish().expect("valid");
        let e = Simulator::new(&p).run(&DataSet::new()).expect("runs");
        assert_eq!(e.array(&p, "y"), Some(&[Value::Float(2.5)][..]));
    }

    #[test]
    fn wrapping_integer_semantics() {
        assert_eq!(
            eval_binop(BinOp::Add, Value::Int(i64::MAX), Value::Int(1)),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            eval_binop(BinOp::Shl, Value::Int(1), Value::Int(64 + 3)),
            Value::Int(8),
            "shift amount masked to 0..63"
        );
    }
}
