//! The simulator facade and the shared operation semantics.
//!
//! [`Simulator`] keeps the original borrowing one-shot API but now
//! executes through the pre-decoded engine (see [`crate::decode`]): a
//! `run` lowers the program once into a [`crate::DecodedProgram`] and
//! drives the tight slot-indexed loop instead of walking the IR per
//! dynamic operation. Callers that run the same program repeatedly
//! should hold a [`crate::Engine`] (decode once, run many); the
//! original per-instruction interpreter survives as
//! [`crate::reference::ReferenceSimulator`], the executable spec the
//! differential tests compare against.
//!
//! [`eval_binop`] and [`eval_unop`] define the operation semantics
//! shared by the engine, the reference interpreter and the rewriter
//! contract.

use crate::data::DataSet;
use crate::decode::DecodedProgram;
use crate::error::Result;
use crate::profile::Profile;
use asip_ir::{BinOp, Program, UnOp, Value};

/// The default dynamic step limit (100 million ops).
pub(crate) const DEFAULT_STEP_LIMIT: u64 = 100_000_000;

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Dynamic counts per instruction and block.
    pub profile: Profile,
    /// Final contents of every array (indexable by the program's array
    /// order), so harnesses can check outputs.
    pub memory: Vec<Vec<Value>>,
    /// Value returned by the program's `ret`, if any.
    pub result: Option<Value>,
}

impl Execution {
    /// Final contents of a named array.
    pub fn array(&self, program: &Program, name: &str) -> Option<&[Value]> {
        program
            .array_by_name(name)
            .map(|id| self.memory[id.index()].as_slice())
    }
}

/// A profiling interpreter for one [`Program`].
///
/// The machine model is the paper's: one operation per cycle, unbounded
/// virtual registers, word-addressed array memory. Division by zero
/// yields zero (integer) or IEEE semantics (float) so random-data
/// benchmarks never trap.
///
/// Each `run` decodes the program and executes the decoded form; the
/// decode cost is linear in the *static* instruction count and is
/// dwarfed by any profiling run. To amortize it away entirely, decode
/// once into a [`crate::Engine`].
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    step_limit: u64,
}

impl<'p> Simulator<'p> {
    /// Create a simulator with the default step limit (100 million ops).
    pub fn new(program: &'p Program) -> Self {
        Simulator {
            program,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Override the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Run the program on the given input data.
    ///
    /// # Errors
    ///
    /// - [`crate::SimError::UnboundInput`] / [`crate::SimError::WrongLength`] /
    ///   [`crate::SimError::WrongType`] if the data set does not match the
    ///   program's input declarations;
    /// - [`crate::SimError::OutOfBounds`] on a bad array access;
    /// - [`crate::SimError::StepLimit`] if execution runs away.
    pub fn run(&self, data: &DataSet) -> Result<Execution> {
        DecodedProgram::decode(self.program).execute(data, self.step_limit)
    }

    /// Run with an execution-trace observer (see [`crate::trace`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(
        &self,
        data: &DataSet,
        sink: &mut dyn crate::trace::TraceSink,
    ) -> Result<Execution> {
        DecodedProgram::decode(self.program).execute_traced(
            self.program,
            data,
            self.step_limit,
            sink,
        )
    }
}

/// Evaluate a binary operation with C-like semantics.
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    match op {
        Add => Value::Int(a.as_int().wrapping_add(b.as_int())),
        Sub => Value::Int(a.as_int().wrapping_sub(b.as_int())),
        Mul => Value::Int(a.as_int().wrapping_mul(b.as_int())),
        Div => {
            let d = b.as_int();
            Value::Int(if d == 0 {
                0
            } else {
                a.as_int().wrapping_div(d)
            })
        }
        Rem => {
            let d = b.as_int();
            Value::Int(if d == 0 {
                0
            } else {
                a.as_int().wrapping_rem(d)
            })
        }
        Shl => Value::Int(a.as_int().wrapping_shl((b.as_int() & 63) as u32)),
        Shr => Value::Int(a.as_int().wrapping_shr((b.as_int() & 63) as u32)),
        And => Value::Int(a.as_int() & b.as_int()),
        Or => Value::Int(a.as_int() | b.as_int()),
        Xor => Value::Int(a.as_int() ^ b.as_int()),
        CmpLt => Value::Int((a.as_int() < b.as_int()) as i64),
        CmpLe => Value::Int((a.as_int() <= b.as_int()) as i64),
        CmpGt => Value::Int((a.as_int() > b.as_int()) as i64),
        CmpGe => Value::Int((a.as_int() >= b.as_int()) as i64),
        CmpEq => Value::Int((a.as_int() == b.as_int()) as i64),
        CmpNe => Value::Int((a.as_int() != b.as_int()) as i64),
        FAdd => Value::Float(a.as_float() + b.as_float()),
        FSub => Value::Float(a.as_float() - b.as_float()),
        FMul => Value::Float(a.as_float() * b.as_float()),
        FDiv => Value::Float(a.as_float() / b.as_float()),
        FCmpLt => Value::Int((a.as_float() < b.as_float()) as i64),
        FCmpLe => Value::Int((a.as_float() <= b.as_float()) as i64),
        FCmpGt => Value::Int((a.as_float() > b.as_float()) as i64),
        FCmpGe => Value::Int((a.as_float() >= b.as_float()) as i64),
        FCmpEq => Value::Int((a.as_float() == b.as_float()) as i64),
        FCmpNe => Value::Int((a.as_float() != b.as_float()) as i64),
    }
}

/// Evaluate a unary operation.
pub fn eval_unop(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Neg => Value::Int(v.as_int().wrapping_neg()),
        UnOp::Not => Value::Int(!v.as_int()),
        UnOp::FNeg => Value::Float(-v.as_float()),
        UnOp::Mov => v,
        UnOp::IntToFloat => Value::Float(v.as_int() as f64),
        UnOp::FloatToInt => Value::Int(v.as_float() as i64),
        UnOp::Math(m) => Value::Float(m.eval(v.as_float())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use asip_ir::{Operand, ProgramBuilder, Ty};

    fn sum_loop_program(n: i64) -> Program {
        // acc = sum_{i<n} x[i]*x[i]
        let mut b = ProgramBuilder::new("sumsq");
        let x = b.input_array("x", Ty::Int, n as usize);
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(header);
        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(n));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        let v = b.load(x, i.into());
        let sq = b.binary(BinOp::Mul, v.into(), v.into());
        let na = b.binary(BinOp::Add, acc.into(), sq.into());
        b.mov_to(acc, na.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        b.finish().expect("valid")
    }

    #[test]
    fn computes_sum_of_squares() {
        let p = sum_loop_program(4);
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        let e = Simulator::new(&p).run(&d).expect("runs");
        assert_eq!(e.result, Some(Value::Int(1 + 4 + 9 + 16)));
    }

    #[test]
    fn profile_counts_match_loop_structure() {
        let p = sum_loop_program(4);
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        let e = Simulator::new(&p).run(&d).expect("runs");
        // header executes 5 times (4 taken + 1 exit), body 4
        assert_eq!(e.profile.block_count(asip_ir::BlockId(1)), 5);
        assert_eq!(e.profile.block_count(asip_ir::BlockId(2)), 4);
        // the multiply runs once per body iteration
        let mul_id = p.blocks()[2].insts[1].id;
        assert_eq!(e.profile.count(mul_id), 4);
        // total = 3 (entry) + 5*2 (header) + 4*7 (body) + 1 (ret)
        assert_eq!(e.profile.total_ops(), 3 + 10 + 28 + 1);
    }

    #[test]
    fn rejects_missing_and_mismatched_inputs() {
        let p = sum_loop_program(4);
        let d = DataSet::new();
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::UnboundInput { .. })
        ));
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::WrongLength { .. })
        ));
        let mut d = DataSet::new();
        d.bind_floats("x", vec![1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::WrongType { .. })
        ));
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        // while (1) {}
        let mut b = ProgramBuilder::new("hang");
        let entry = b.entry_block();
        b.select_block(entry);
        b.jump(entry);
        let p = b.finish().expect("valid");
        let err = Simulator::new(&p)
            .with_step_limit(1000)
            .run(&DataSet::new());
        assert!(matches!(err, Err(SimError::StepLimit { limit: 1000 })));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = ProgramBuilder::new("oob");
        let x = b.input_array("x", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        let _ = b.load(x, Operand::imm_int(5));
        b.ret(None);
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]);
        assert!(matches!(
            Simulator::new(&p).run(&d),
            Err(SimError::OutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            eval_binop(BinOp::Div, Value::Int(7), Value::Int(2)),
            Value::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Value::Int(7), Value::Int(0)),
            Value::Int(0),
            "integer division by zero yields zero"
        );
        assert_eq!(
            eval_binop(BinOp::Rem, Value::Int(7), Value::Int(0)),
            Value::Int(0)
        );
        let inf = eval_binop(BinOp::FDiv, Value::Float(1.0), Value::Float(0.0));
        assert_eq!(inf, Value::Float(f64::INFINITY));
    }

    #[test]
    fn comparison_and_float_ops() {
        assert_eq!(
            eval_binop(BinOp::CmpLt, Value::Int(1), Value::Int(2)),
            Value::Int(1)
        );
        assert_eq!(
            eval_binop(BinOp::FCmpGe, Value::Float(2.0), Value::Float(2.0)),
            Value::Int(1)
        );
        assert_eq!(
            eval_binop(BinOp::FMul, Value::Float(1.5), Value::Float(2.0)),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_unop(UnOp::FloatToInt, Value::Float(-2.9)),
            Value::Int(-2)
        );
        assert_eq!(eval_unop(UnOp::Mov, Value::Float(1.25)), Value::Float(1.25));
    }

    #[test]
    fn outputs_are_observable() {
        let mut b = ProgramBuilder::new("out");
        let y = b.output_array("y", Ty::Int, 2);
        let entry = b.entry_block();
        b.select_block(entry);
        b.store(y, Operand::imm_int(0), Operand::imm_int(42));
        b.store(y, Operand::imm_int(1), Operand::imm_int(7));
        b.ret(None);
        let p = b.finish().expect("valid");
        let e = Simulator::new(&p).run(&DataSet::new()).expect("runs");
        assert_eq!(e.array(&p, "y"), Some(&[Value::Int(42), Value::Int(7)][..]));
    }

    #[test]
    fn stores_coerce_to_element_type() {
        let mut b = ProgramBuilder::new("coerce");
        let y = b.output_array("y", Ty::Float, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        b.store(y, Operand::imm_int(0), Operand::imm_float(2.5));
        b.ret(None);
        let p = b.finish().expect("valid");
        let e = Simulator::new(&p).run(&DataSet::new()).expect("runs");
        assert_eq!(e.array(&p, "y"), Some(&[Value::Float(2.5)][..]));
    }

    #[test]
    fn wrapping_integer_semantics() {
        assert_eq!(
            eval_binop(BinOp::Add, Value::Int(i64::MAX), Value::Int(1)),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            eval_binop(BinOp::Shl, Value::Int(1), Value::Int(64 + 3)),
            Value::Int(8),
            "shift amount masked to 0..63"
        );
    }
}
