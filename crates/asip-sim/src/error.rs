//! Simulator errors.

use std::fmt;

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An input array was not bound in the data set.
    UnboundInput {
        /// Array name.
        name: String,
    },
    /// Bound data has the wrong length.
    WrongLength {
        /// Array name.
        name: String,
        /// Declared length.
        expected: usize,
        /// Bound length.
        got: usize,
    },
    /// Bound data has the wrong element type.
    WrongType {
        /// Array name.
        name: String,
    },
    /// An array access was out of bounds.
    OutOfBounds {
        /// Array name.
        name: String,
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// The dynamic step limit was exceeded (runaway loop).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnboundInput { name } => {
                write!(f, "input array `{name}` was not bound in the data set")
            }
            SimError::WrongLength {
                name,
                expected,
                got,
            } => write!(
                f,
                "array `{name}` declared with {expected} elements but bound with {got}"
            ),
            SimError::WrongType { name } => {
                write!(f, "array `{name}` bound with the wrong element type")
            }
            SimError::OutOfBounds { name, index, len } => {
                write!(f, "index {index} out of bounds for `{name}` (length {len})")
            }
            SimError::StepLimit { limit } => {
                write!(f, "execution exceeded the step limit of {limit} operations")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names_and_limits() {
        let e = SimError::OutOfBounds {
            name: "x".into(),
            index: -1,
            len: 4,
        };
        assert!(e.to_string().contains("`x`"));
        let e = SimError::StepLimit { limit: 100 };
        assert!(e.to_string().contains("100"));
    }
}
