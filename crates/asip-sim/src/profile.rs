//! Dynamic execution profiles.

use asip_ir::{BlockId, InstId};
use serde::{Deserialize, Serialize};

/// Per-instruction and per-block dynamic execution counts for one run.
///
/// This is the "3-address code with profile info" artifact flowing from
/// step 2 to step 3 in the paper's Figure 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    inst_counts: Vec<u64>,
    block_counts: Vec<u64>,
    total_ops: u64,
}

impl Profile {
    /// Create an empty profile sized for a program.
    pub fn new(inst_slots: usize, block_slots: usize) -> Self {
        Profile {
            inst_counts: vec![0; inst_slots],
            block_counts: vec![0; block_slots],
            total_ops: 0,
        }
    }

    /// Record one execution of an instruction.
    #[inline]
    pub(crate) fn bump_inst(&mut self, id: InstId) {
        if id.index() >= self.inst_counts.len() {
            self.inst_counts.resize(id.index() + 1, 0);
        }
        self.inst_counts[id.index()] += 1;
        self.total_ops += 1;
    }

    /// Record one entry into a block.
    #[inline]
    pub(crate) fn bump_block(&mut self, id: BlockId) {
        if id.index() >= self.block_counts.len() {
            self.block_counts.resize(id.index() + 1, 0);
        }
        self.block_counts[id.index()] += 1;
    }

    /// Dynamic execution count of a static instruction.
    pub fn count(&self, id: InstId) -> u64 {
        self.inst_counts.get(id.index()).copied().unwrap_or(0)
    }

    /// Dynamic entry count of a block.
    pub fn block_count(&self, id: BlockId) -> u64 {
        self.block_counts.get(id.index()).copied().unwrap_or(0)
    }

    /// Total dynamic operations executed (every instruction counts one).
    ///
    /// Sequence frequencies in the paper's tables are percentages of this
    /// total ("the percentage of execution time for which that sequence
    /// accounts", one cycle per operation).
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Iterate over `(InstId, count)` for instructions that executed.
    pub fn executed_insts(&self) -> impl Iterator<Item = (InstId, u64)> + '_ {
        self.inst_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (InstId(i as u32), c))
    }

    /// The raw per-instruction counts, indexed by [`InstId`]. Together
    /// with [`Profile::block_counts`] and [`Profile::total_ops`] this is
    /// the profile's complete state, exposed so artifact stores can
    /// serialize profiles without reflective serialization support.
    pub fn inst_counts(&self) -> &[u64] {
        &self.inst_counts
    }

    /// The raw per-block entry counts, indexed by [`BlockId`].
    pub fn block_counts(&self) -> &[u64] {
        &self.block_counts
    }

    /// Reassemble a profile from the parts exposed by
    /// [`Profile::inst_counts`], [`Profile::block_counts`] and
    /// [`Profile::total_ops`] (the decode half of profile persistence).
    pub fn from_parts(inst_counts: Vec<u64>, block_counts: Vec<u64>, total_ops: u64) -> Self {
        Profile {
            inst_counts,
            block_counts,
            total_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut p = Profile::new(4, 2);
        p.bump_inst(InstId(1));
        p.bump_inst(InstId(1));
        p.bump_inst(InstId(3));
        p.bump_block(BlockId(0));
        assert_eq!(p.count(InstId(1)), 2);
        assert_eq!(p.count(InstId(0)), 0);
        assert_eq!(p.count(InstId(99)), 0, "out of range reads as zero");
        assert_eq!(p.block_count(BlockId(0)), 1);
        assert_eq!(p.total_ops(), 3);
        let executed: Vec<_> = p.executed_insts().collect();
        assert_eq!(executed, vec![(InstId(1), 2), (InstId(3), 1)]);
    }

    #[test]
    fn grows_on_demand() {
        let mut p = Profile::new(0, 0);
        p.bump_inst(InstId(10));
        p.bump_block(BlockId(5));
        assert_eq!(p.count(InstId(10)), 1);
        assert_eq!(p.block_count(BlockId(5)), 1);
    }
}
