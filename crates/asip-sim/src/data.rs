//! Input data sets and seeded random data generators.
//!
//! The paper's experiments drive each benchmark with "random" inputs
//! (Table 1: random float arrays, random integer streams, 24×24 8-bit
//! images). We reproduce those shapes with a seeded PRNG so that every
//! experiment run is bit-for-bit repeatable.

use asip_ir::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A binding of input-array names to concrete data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataSet {
    arrays: HashMap<String, Vec<Value>>,
}

impl DataSet {
    /// An empty data set.
    pub fn new() -> Self {
        DataSet::default()
    }

    /// Bind integer data to an input array name.
    pub fn bind_ints(&mut self, name: impl Into<String>, data: Vec<i64>) -> &mut Self {
        self.arrays
            .insert(name.into(), data.into_iter().map(Value::Int).collect());
        self
    }

    /// Bind floating-point data to an input array name.
    pub fn bind_floats(&mut self, name: impl Into<String>, data: Vec<f64>) -> &mut Self {
        self.arrays
            .insert(name.into(), data.into_iter().map(Value::Float).collect());
        self
    }

    /// Bind already-typed values.
    pub fn bind_values(&mut self, name: impl Into<String>, data: Vec<Value>) -> &mut Self {
        self.arrays.insert(name.into(), data);
        self
    }

    /// Look up bound data by name.
    pub fn get(&self, name: &str) -> Option<&[Value]> {
        self.arrays.get(name).map(Vec::as_slice)
    }

    /// Names bound in this data set.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arrays.keys().map(String::as_str)
    }
}

/// Seeded generator for the paper's input-data shapes.
///
/// All methods consume from one deterministic [`StdRng`] stream, so a
/// `DataGen` with a given seed always produces the same experiment inputs.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Create a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        DataGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `n` uniform floats in `[lo, hi)` — the "random array of N floating
    /// point values" of Table 1.
    pub fn floats(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.rng.gen_range(lo..hi)).collect()
    }

    /// `n` uniform integers in `[lo, hi]` — the "stream of N random
    /// integer values" of Table 1.
    pub fn ints(&mut self, n: usize, lo: i64, hi: i64) -> Vec<i64> {
        (0..n).map(|_| self.rng.gen_range(lo..=hi)).collect()
    }

    /// A `w`×`h` 8-bit image stored row-major — the "24x24 8-bit image"
    /// of Table 1. Values are a smooth gradient plus noise so that
    /// image-processing benchmarks (histogram, edge detection) see
    /// realistic structure rather than white noise.
    pub fn image(&mut self, w: usize, h: usize) -> Vec<i64> {
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let base = (x * 255 / w.max(1) + y * 255 / h.max(1)) / 2;
                let noise: i64 = self.rng.gen_range(-24..=24);
                out.push((base as i64 + noise).clamp(0, 255));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_binding_and_lookup() {
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2]).bind_floats("y", vec![0.5]);
        assert_eq!(d.get("x"), Some(&[Value::Int(1), Value::Int(2)][..]));
        assert_eq!(d.get("y"), Some(&[Value::Float(0.5)][..]));
        assert_eq!(d.get("z"), None);
        let mut names: Vec<_> = d.names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = DataGen::new(42).floats(16, -1.0, 1.0);
        let b = DataGen::new(42).floats(16, -1.0, 1.0);
        assert_eq!(a, b);
        let c = DataGen::new(43).floats(16, -1.0, 1.0);
        assert_ne!(a, c, "different seeds give different data");
    }

    #[test]
    fn float_range_respected() {
        let v = DataGen::new(1).floats(1000, -2.0, 3.0);
        assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn int_range_inclusive() {
        let v = DataGen::new(1).ints(1000, 0, 9);
        assert!(v.iter().all(|&x| (0..=9).contains(&x)));
        assert!(v.contains(&0) && v.contains(&9), "endpoints reachable");
    }

    #[test]
    fn image_is_8bit_and_structured() {
        let img = DataGen::new(7).image(24, 24);
        assert_eq!(img.len(), 24 * 24);
        assert!(img.iter().all(|&p| (0..=255).contains(&p)));
        // gradient: average of last row larger than first row
        let first: i64 = img[..24].iter().sum();
        let last: i64 = img[23 * 24..].iter().sum();
        assert!(last > first, "gradient should rise top to bottom");
    }
}
