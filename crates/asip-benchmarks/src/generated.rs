//! The curated **generated corpus**: a second benchmark suite produced
//! by the seeded `asip-gen` workload generator.
//!
//! The corpus is a fixed grid over the generator's main axes — size
//! (small/mid/large presets) × loop depth (shallow/deep) × type mix
//! (int-only / float-heavy) × chainable-idiom density (low/high) —
//! 3 × 2 × 2 × 2 = 24 programs. Every entry is pinned by its derived
//! seed and [`asip_gen::GENERATOR_VERSION`]: the pinned-digest test
//! below fails on any generator behavior change, and the fix is to bump
//! `GENERATOR_VERSION` and re-bless the digests (never to silently
//! accept drifted programs — cached exploration artifacts key on these
//! bytes).
//!
//! Entries carry [`Suite::Generated`], which the explorer folds into
//! persisted store keys, so corpus artifacts can never collide with
//! Table-1 artifacts.

use crate::{Benchmark, DataSpec, Registry, Suite};
use asip_gen::{fnv1a_64, generate_named, GenConfig, GenTy, GENERATOR_VERSION};
use std::sync::OnceLock;

/// The corpus size classes (the generator's three presets). Benches use
/// these to sweep a size series instead of one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusClass {
    /// `GenConfig::small()` shapes (~10k dynamic ops).
    Small,
    /// `GenConfig::mid()` shapes (~100k dynamic ops).
    Mid,
    /// `GenConfig::large()` shapes (~1M dynamic ops).
    Large,
}

impl CorpusClass {
    /// All classes, smallest first.
    pub fn all() -> [CorpusClass; 3] {
        [CorpusClass::Small, CorpusClass::Mid, CorpusClass::Large]
    }

    /// The short code used in corpus program names (`gen-<code>-...`).
    pub fn code(self) -> &'static str {
        match self {
            CorpusClass::Small => "s",
            CorpusClass::Mid => "m",
            CorpusClass::Large => "l",
        }
    }

    fn preset(self) -> GenConfig {
        match self {
            CorpusClass::Small => GenConfig::small(),
            CorpusClass::Mid => GenConfig::mid(),
            CorpusClass::Large => GenConfig::large(),
        }
    }
}

/// Grid axes beyond size: (name segment, loop depth), (segment,
/// float share), (segment, chain density).
const DEPTHS: [(&str, usize); 2] = [("d1", 1), ("d3", 3)];
const MIXES: [(&str, u8); 2] = [("int", 0), ("fp", 45)];
const CHAINS: [(&str, u8); 2] = [("lo", 10), ("hi", 60)];

/// The 24-program generated corpus, built once and leaked: `Benchmark`
/// is a `Copy` struct of `&'static` fields, so generated entries leak
/// their strings exactly once per process.
pub fn generated_corpus() -> &'static [Benchmark] {
    static CORPUS: OnceLock<Vec<Benchmark>> = OnceLock::new();
    CORPUS.get_or_init(build_corpus).as_slice()
}

/// The corpus entries of one size class, in grid order.
pub fn generated_corpus_for(class: CorpusClass) -> impl Iterator<Item = &'static Benchmark> {
    let prefix = format!("gen-{}-", class.code());
    generated_corpus()
        .iter()
        .filter(move |b| b.name.starts_with(&prefix))
}

/// Table-1 plus the generated corpus in one registry — the registry the
/// differential and scaling harnesses explore.
pub fn full_registry() -> Registry {
    let mut r = crate::registry();
    for &b in generated_corpus() {
        r.push(b);
    }
    r
}

fn build_corpus() -> Vec<Benchmark> {
    let mut corpus = Vec::with_capacity(24);
    for class in CorpusClass::all() {
        for (dseg, depth) in DEPTHS {
            for (mseg, float_share) in MIXES {
                for (cseg, chain) in CHAINS {
                    let name = format!("gen-{}-{dseg}-{mseg}-{cseg}", class.code());
                    let preset = class.preset();
                    let config = GenConfig {
                        loop_depth: depth,
                        float_share,
                        float_arrays: if float_share == 0 {
                            0
                        } else {
                            preset.float_arrays
                        },
                        chain_density: chain,
                        ..preset
                    };
                    corpus.push(corpus_entry(name, &config));
                }
            }
        }
    }
    corpus
}

/// Seed derivation: a stable function of the entry name and the
/// generator version, so (a) every entry gets a distinct seed and (b) a
/// version bump regenerates the whole corpus — new programs, new
/// digests, new store keys — as the pinning policy requires.
fn corpus_seed(name: &str) -> u64 {
    fnv1a_64(name.as_bytes()) ^ u64::from(GENERATOR_VERSION)
}

fn corpus_entry(name: String, config: &GenConfig) -> Benchmark {
    let seed = corpus_seed(&name);
    let prog = generate_named(name, seed, config);
    let cfg = prog.config;
    let specs: Vec<DataSpec> = prog
        .inputs
        .iter()
        .map(|input| {
            let iname: &'static str = Box::leak(input.name.clone().into_boxed_str());
            match input.ty {
                GenTy::Int => DataSpec::Ints {
                    name: iname,
                    n: input.len,
                },
                GenTy::Float => DataSpec::Floats {
                    name: iname,
                    n: input.len,
                },
            }
        })
        .collect();
    let data = if specs.len() == 1 {
        specs[0]
    } else {
        DataSpec::Multi {
            specs: Box::leak(specs.into_boxed_slice()),
        }
    };
    let description = format!(
        "generated workload (seed 0x{seed:016x}, gen v{GENERATOR_VERSION}): \
         {} stmts, depth {}, {}% float, {}% chain idioms",
        cfg.statements, cfg.loop_depth, cfg.float_share, cfg.chain_density
    );
    let data_description = format!(
        "{} int + {} float random arrays of {}",
        cfg.int_arrays, cfg.float_arrays, cfg.array_len
    );
    let paper_lines = prog.line_count();
    Benchmark {
        name: Box::leak(prog.name.into_boxed_str()),
        description: Box::leak(description.into_boxed_str()),
        paper_lines,
        data_description: Box::leak(data_description.into_boxed_str()),
        source: Box::leak(prog.source.into_boxed_str()),
        data,
        suite: Suite::Generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_full_grid() {
        let corpus = generated_corpus();
        assert_eq!(corpus.len(), 24, "3 sizes x 2 depths x 2 mixes x 2 chains");
        let mut names: Vec<_> = corpus.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24, "corpus names are unique");
        assert!(corpus.iter().all(|b| b.suite == Suite::Generated));
        for class in CorpusClass::all() {
            assert_eq!(generated_corpus_for(class).count(), 8);
        }
    }

    #[test]
    fn corpus_is_one_static_allocation() {
        // the OnceLock means repeated calls hand out the same entries
        // (and the leaked strings are paid for once)
        assert!(std::ptr::eq(
            generated_corpus().as_ptr(),
            generated_corpus().as_ptr()
        ));
    }

    #[test]
    fn full_registry_extends_table1_without_collisions() {
        let full = full_registry();
        assert_eq!(full.len(), 12 + 24);
        assert!(full.find("fir").is_some(), "Table-1 entries intact");
        assert!(full.find("gen-s-d1-int-lo").is_some());
        assert_eq!(
            full.find("gen-l-d3-fp-hi").expect("registered").suite,
            Suite::Generated
        );
    }

    #[test]
    fn corpus_entries_bind_their_declared_inputs() {
        for b in generated_corpus() {
            let program = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let data = b.dataset();
            // every input array the program declares is bound with the
            // right length (otherwise simulation would fault)
            for array in &program.arrays {
                if array.kind == asip_ir::ArrayKind::Input {
                    let bound = data
                        .get(&array.name)
                        .unwrap_or_else(|| panic!("{}: {} unbound", b.name, array.name));
                    assert_eq!(bound.len(), array.len, "{}: {} length", b.name, array.name);
                }
            }
        }
    }

    /// The corpus digests, pinned. If this fails the generator's output
    /// changed: bump `asip_gen::GENERATOR_VERSION` and re-bless (the
    /// printed table below is copy-pasteable) — never accept drift
    /// silently, persisted exploration artifacts key on these bytes.
    #[test]
    fn corpus_digests_are_pinned() {
        let pinned: [(&str, u64); 24] = PINNED_DIGESTS;
        let corpus = generated_corpus();
        let actual: Vec<(&str, u64)> = corpus
            .iter()
            .map(|b| (b.name, fnv1a_64(b.source.as_bytes())))
            .collect();
        if actual != pinned {
            let mut table = String::new();
            for (name, digest) in &actual {
                table.push_str(&format!("    (\"{name}\", 0x{digest:016x}),\n"));
            }
            panic!(
                "generated corpus drifted from its pinned digests.\n\
                 If this is an intentional generator change, bump \
                 GENERATOR_VERSION and re-bless:\n{table}"
            );
        }
    }

    const PINNED_DIGESTS: [(&str, u64); 24] = [
        ("gen-s-d1-int-lo", 0x8b331ed6802bcfdf),
        ("gen-s-d1-int-hi", 0xfd88d9e2e32a0a11),
        ("gen-s-d1-fp-lo", 0x52dd222200fa57db),
        ("gen-s-d1-fp-hi", 0xb594cb0d2347e098),
        ("gen-s-d3-int-lo", 0xe9d1f1b0ce7de6b0),
        ("gen-s-d3-int-hi", 0x69364d8cb50833a3),
        ("gen-s-d3-fp-lo", 0x0929482190564393),
        ("gen-s-d3-fp-hi", 0xa959ea19d3b82223),
        ("gen-m-d1-int-lo", 0xa084c35de0fa4069),
        ("gen-m-d1-int-hi", 0xfbbfa006ee6f2835),
        ("gen-m-d1-fp-lo", 0x9a70db31f699d937),
        ("gen-m-d1-fp-hi", 0x008307a53727d171),
        ("gen-m-d3-int-lo", 0xa71ea63f2ee37262),
        ("gen-m-d3-int-hi", 0xe9162251d12982f5),
        ("gen-m-d3-fp-lo", 0x0285deedd29badf8),
        ("gen-m-d3-fp-hi", 0xb84abfc9df74e721),
        ("gen-l-d1-int-lo", 0x52b1c209f62b58f3),
        ("gen-l-d1-int-hi", 0xc9b4b973b22bf2b2),
        ("gen-l-d1-fp-lo", 0x6c9d8a4990d9d5e3),
        ("gen-l-d1-fp-hi", 0xc06be7c402e358f2),
        ("gen-l-d3-int-lo", 0x9466867598787da2),
        ("gen-l-d3-int-hi", 0x839898c97f8c692f),
        ("gen-l-d3-fp-lo", 0xd73a0014783954fa),
        ("gen-l-d3-fp-hi", 0x156392876a97ae37),
    ];
}
