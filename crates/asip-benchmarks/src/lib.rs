//! # asip-benchmarks
//!
//! The twelve DSP benchmarks of the paper's Table 1, re-implemented in
//! mini-C from their descriptions (several descend from Embree & Kimble,
//! *C Language Algorithms for Digital Signal Processing*, 1991). Each
//! benchmark carries its Table-1 metadata and knows how to generate the
//! paper-specified input data deterministically.
//!
//! | name | description | input data |
//! |---|---|---|
//! | `fir` | 35-point lowpass fp FIR filter (cutoff 0.2) | 100 random floats |
//! | `iir` | IIR filter — 3-section, 1 dB passband ripple | 100 random floats |
//! | `pse` | power spectral estimation using FFT | 256 random floats |
//! | `intfft` | interpolate 2:1 using FFT and inverse FFT | 100 random floats |
//! | `compress` | discrete cosine transformation (4:1 comp) | 24×24 8-bit image |
//! | `flatten` | histogram flattening (gray level mod.) | 24×24 8-bit image |
//! | `smooth` | 3×3 Gaussian blur lowpass filter | 24×24 8-bit image |
//! | `edge` | edge detection using 2-D convolution | 24×24 8-bit image |
//! | `sewha` | Sewha's (FIR) filter | stream of 100 random integers |
//! | `dft` | discrete fast Fourier transform | stream of 256 random integers |
//! | `bspline` | B-spline (FIR) filter | stream of 256 random integers |
//! | `feowf` | fifth-order elliptic wave filter | stream of 256 random integers |
//!
//! ## Example
//!
//! ```
//! let benches = asip_benchmarks::registry();
//! let bench = benches.find("fir").expect("built-in");
//! let program = bench.compile()?;
//! let profile = bench.profile(&program)?;
//! assert!(profile.total_ops() > 1000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generated;
mod regress;

pub use generated::{full_registry, generated_corpus, generated_corpus_for, CorpusClass};
pub use regress::{regress_corpus, regress_dir};

use asip_ir::Program;
use asip_sim::{DataGen, DataSet, Profile, Simulator};

/// Default experiment seed (the publication year, for tradition).
pub const DEFAULT_SEED: u64 = 1995;

/// Which suite a benchmark belongs to. Suite membership is part of a
/// benchmark's identity: the explorer folds the suite tag into persisted
/// store keys so a generated program could never collide with a Table-1
/// artifact even if it reused a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The paper's twelve Table-1 kernels.
    Table1,
    /// Programs from the seeded `asip-gen` generator (the curated
    /// corpus, pinned by seed + `GENERATOR_VERSION`).
    Generated,
    /// Minimized regression cases from generator-found divergences.
    Regress,
    /// Ad-hoc user kernels registered at runtime.
    User,
}

impl Suite {
    /// A stable one-byte discriminant for store-key hashing. These
    /// values are persisted-format contract: never renumber them.
    pub fn tag(self) -> u8 {
        match self {
            Suite::Table1 => 0,
            Suite::Generated => 1,
            Suite::Regress => 2,
            Suite::User => 3,
        }
    }
}

/// How a benchmark's input arrays are generated (Table 1's "Data Input").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSpec {
    /// `n` uniform floats in [-1, 1) bound to array `name`.
    Floats {
        /// Input array name.
        name: &'static str,
        /// Element count.
        n: usize,
    },
    /// `n` uniform integers in [-128, 127] bound to array `name`.
    Ints {
        /// Input array name.
        name: &'static str,
        /// Element count.
        n: usize,
    },
    /// A `w`×`h` 8-bit image bound to array `name`.
    Image {
        /// Input array name.
        name: &'static str,
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// Several independent bindings, drawn left to right from one
    /// seeded stream — for user kernels with more than one input array.
    Multi {
        /// The per-array specifications.
        specs: &'static [DataSpec],
    },
}

/// One benchmark: Table-1 metadata plus mini-C source and data spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benchmark {
    /// Short name (Table 1 column 1).
    pub name: &'static str,
    /// Description (Table 1 column 3).
    pub description: &'static str,
    /// Approximate C line count reported in Table 1.
    pub paper_lines: usize,
    /// Data description (Table 1 column 4).
    pub data_description: &'static str,
    /// The mini-C source.
    pub source: &'static str,
    /// Input data specification.
    pub data: DataSpec,
    /// Which suite the benchmark belongs to (folded into store keys).
    pub suite: Suite,
}

impl Benchmark {
    /// Compile the benchmark to 3-address code.
    ///
    /// # Errors
    ///
    /// Propagates front-end errors (none occur for the built-in sources;
    /// the test suite compiles all twelve).
    pub fn compile(&self) -> Result<Program, asip_frontend::FrontendError> {
        asip_frontend::compile(self.name, self.source)
    }

    /// Generate the paper-specified input data with the default seed.
    pub fn dataset(&self) -> DataSet {
        self.dataset_with_seed(DEFAULT_SEED)
    }

    /// Generate input data with an explicit seed.
    pub fn dataset_with_seed(&self, seed: u64) -> DataSet {
        let mut gen = DataGen::new(seed);
        let mut ds = DataSet::new();
        bind_spec(&mut gen, &mut ds, self.data);
        ds
    }

    /// Run the profiling simulation (paper Figure 2, step 2) with the
    /// default seed.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (unbound inputs, runaway execution).
    pub fn profile(&self, program: &Program) -> Result<Profile, asip_sim::SimError> {
        Ok(Simulator::new(program).run(&self.dataset())?.profile)
    }
}

fn bind_spec(gen: &mut DataGen, ds: &mut DataSet, spec: DataSpec) {
    match spec {
        DataSpec::Floats { name, n } => {
            ds.bind_floats(name, gen.floats(n, -1.0, 1.0));
        }
        DataSpec::Ints { name, n } => {
            ds.bind_ints(name, gen.ints(n, -128, 127));
        }
        DataSpec::Image { name, w, h } => {
            ds.bind_ints(name, gen.image(w, h));
        }
        DataSpec::Multi { specs } => {
            for &inner in specs {
                bind_spec(gen, ds, inner);
            }
        }
    }
}

/// The benchmark registry.
#[derive(Debug, Clone)]
pub struct Registry {
    benches: Vec<Benchmark>,
}

impl Registry {
    /// Register an additional benchmark (e.g. a user kernel) after the
    /// built-in suite. A benchmark with an already-registered name
    /// replaces the existing entry — names are unique lookup keys, so a
    /// silent duplicate would be unreachable through [`Registry::find`].
    pub fn push(&mut self, bench: Benchmark) {
        match self.benches.iter_mut().find(|b| b.name == bench.name) {
            Some(existing) => *existing = bench,
            None => self.benches.push(bench),
        }
    }

    /// Find a benchmark by name.
    pub fn find(&self, name: &str) -> Option<&Benchmark> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Iterate in Table-1 order.
    pub fn iter(&self) -> impl Iterator<Item = &Benchmark> {
        self.benches.iter()
    }

    /// Number of benchmarks (twelve).
    pub fn len(&self) -> usize {
        self.benches.len()
    }

    /// Never true — the registry is the fixed Table-1 suite.
    pub fn is_empty(&self) -> bool {
        self.benches.is_empty()
    }
}

/// The twelve Table-1 benchmarks.
pub fn registry() -> Registry {
    Registry {
        benches: vec![
            Benchmark {
                name: "fir",
                suite: Suite::Table1,
                description: "35-point lowpass fp FIR filter (cutoff 0.2)",
                paper_lines: 85,
                data_description: "Random array of 100 floating point values",
                source: include_str!("programs/fir.mc"),
                data: DataSpec::Floats { name: "x", n: 100 },
            },
            Benchmark {
                name: "iir",
                suite: Suite::Table1,
                description: "IIR filter - 3-section, 1dB passband ripple",
                paper_lines: 65,
                data_description: "Random array of 100 floating point values",
                source: include_str!("programs/iir.mc"),
                data: DataSpec::Floats { name: "x", n: 100 },
            },
            Benchmark {
                name: "pse",
                suite: Suite::Table1,
                description: "Power spectral estimation using FFT",
                paper_lines: 220,
                data_description: "Random array of 256 floating point values",
                source: include_str!("programs/pse.mc"),
                data: DataSpec::Floats { name: "x", n: 256 },
            },
            Benchmark {
                name: "intfft",
                suite: Suite::Table1,
                description: "Interpolate 2:1 using FFT and inverse FFT",
                paper_lines: 280,
                data_description: "Random array of 100 floating point values",
                source: include_str!("programs/intfft.mc"),
                data: DataSpec::Floats { name: "x", n: 100 },
            },
            Benchmark {
                name: "compress",
                suite: Suite::Table1,
                description: "Discrete cosine transformation (4:1 comp)",
                paper_lines: 190,
                data_description: "24x24 8-bit image",
                source: include_str!("programs/compress.mc"),
                data: DataSpec::Image {
                    name: "img",
                    w: 24,
                    h: 24,
                },
            },
            Benchmark {
                name: "flatten",
                suite: Suite::Table1,
                description: "Histogram flattening (gray level mod.)",
                paper_lines: 195,
                data_description: "24x24 8-bit image",
                source: include_str!("programs/flatten.mc"),
                data: DataSpec::Image {
                    name: "img",
                    w: 24,
                    h: 24,
                },
            },
            Benchmark {
                name: "smooth",
                suite: Suite::Table1,
                description: "3x3 Gaussian blur lowpass filter",
                paper_lines: 130,
                data_description: "24x24 8-bit image",
                source: include_str!("programs/smooth.mc"),
                data: DataSpec::Image {
                    name: "img",
                    w: 24,
                    h: 24,
                },
            },
            Benchmark {
                name: "edge",
                suite: Suite::Table1,
                description: "Edge detection using 2D convolution",
                paper_lines: 280,
                data_description: "24x24 8-bit image",
                source: include_str!("programs/edge.mc"),
                data: DataSpec::Image {
                    name: "img",
                    w: 24,
                    h: 24,
                },
            },
            Benchmark {
                name: "sewha",
                suite: Suite::Table1,
                description: "Sewha's (FIR) filter",
                paper_lines: 36,
                data_description: "Stream of 100 random integer values",
                source: include_str!("programs/sewha.mc"),
                data: DataSpec::Ints { name: "x", n: 100 },
            },
            Benchmark {
                name: "dft",
                suite: Suite::Table1,
                description: "Discrete fast fourier transform",
                paper_lines: 15,
                data_description: "Stream of 256 random integer values",
                source: include_str!("programs/dft.mc"),
                data: DataSpec::Ints { name: "x", n: 256 },
            },
            Benchmark {
                name: "bspline",
                suite: Suite::Table1,
                description: "B Spline (FIR) filter",
                paper_lines: 30,
                data_description: "Stream of 256 random integer values",
                source: include_str!("programs/bspline.mc"),
                data: DataSpec::Ints { name: "x", n: 256 },
            },
            Benchmark {
                name: "feowf",
                suite: Suite::Table1,
                description: "Fifth order elliptic wave filter",
                paper_lines: 32,
                data_description: "Stream of 256 random integer values",
                source: include_str!("programs/feowf.mc"),
                data: DataSpec::Ints { name: "x", n: 256 },
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::Value;

    #[test]
    fn registry_has_twelve_in_table_order() {
        let r = registry();
        assert_eq!(r.len(), 12);
        assert!(!r.is_empty());
        let names: Vec<_> = r.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "fir", "iir", "pse", "intfft", "compress", "flatten", "smooth", "edge", "sewha",
                "dft", "bspline", "feowf"
            ]
        );
        assert!(r.find("fir").is_some());
        assert!(r.find("nope").is_none());
    }

    #[test]
    fn all_benchmarks_compile_and_run() {
        for b in registry().iter() {
            let program = b
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
            program
                .validate()
                .unwrap_or_else(|e| panic!("{} produced invalid IR: {e}", b.name));
            let profile = b
                .profile(&program)
                .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", b.name));
            assert!(
                profile.total_ops() > 500,
                "{} did too little work: {} ops",
                b.name,
                profile.total_ops()
            );
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let b = registry().find("sewha").copied().expect("exists");
        let p = b.compile().expect("compiles");
        let p1 = b.profile(&p).expect("runs");
        let p2 = b.profile(&p).expect("runs");
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_seeds_change_float_data_not_structure() {
        let b = registry().find("fir").copied().expect("exists");
        let d1 = b.dataset_with_seed(1);
        let d2 = b.dataset_with_seed(2);
        assert_ne!(d1.get("x"), d2.get("x"));
        assert_eq!(d1.get("x").expect("bound").len(), 100);
    }

    #[test]
    fn fir_filters_lowpass() {
        let b = registry().find("fir").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let y = exec.array(&program, "y").expect("output bound");
        assert_eq!(y.len(), 100);
        assert!(y
            .iter()
            .all(|v| matches!(v, Value::Float(f) if f.is_finite())));
        assert!(y.iter().any(|v| v.as_float().abs() > 1e-9));
    }

    #[test]
    fn flatten_preserves_pixel_count_and_range() {
        let b = registry().find("flatten").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let out = exec.array(&program, "out").expect("output");
        assert_eq!(out.len(), 576);
        assert!(out.iter().all(|v| (0..=255).contains(&v.as_int())));
        assert!(out.iter().map(|v| v.as_int()).max().expect("nonempty") >= 250);
    }

    #[test]
    fn smooth_output_in_pixel_range() {
        let b = registry().find("smooth").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let out = exec.array(&program, "out").expect("output");
        assert!(out.iter().all(|v| (0..=255).contains(&v.as_int())));
    }

    #[test]
    fn edge_detects_gradient_structure() {
        let b = registry().find("edge").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let out = exec.array(&program, "out").expect("output");
        assert_eq!(out[0].as_int(), 0);
        assert!(out.iter().any(|v| v.as_int() > 0));
        assert!(out.iter().all(|v| (0..=255).contains(&v.as_int())));
    }

    #[test]
    fn pse_produces_nonnegative_power() {
        let b = registry().find("pse").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let psd = exec.array(&program, "psd").expect("output");
        assert_eq!(psd.len(), 128);
        assert!(psd.iter().all(|v| v.as_float() >= 0.0));
        assert!(psd.iter().any(|v| v.as_float() > 0.0));
    }

    #[test]
    fn dft_satisfies_parseval() {
        let b = registry().find("dft").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let re = exec.array(&program, "xre").expect("output");
        let im = exec.array(&program, "xim").expect("output");
        let spec_energy: f64 = re
            .iter()
            .zip(im)
            .map(|(r, i)| r.as_float() * r.as_float() + i.as_float() * i.as_float())
            .sum();
        let input = b.dataset();
        let sig_energy: f64 = input
            .get("x")
            .expect("bound")
            .iter()
            .map(|v| v.as_float() * v.as_float())
            .sum();
        let ratio = spec_energy / (256.0 * sig_energy);
        assert!(
            (ratio - 1.0).abs() < 1e-6,
            "Parseval ratio {ratio} should be 1"
        );
    }

    #[test]
    fn intfft_interpolation_tracks_input() {
        let b = registry().find("intfft").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let y = exec.array(&program, "y").expect("output");
        assert_eq!(y.len(), 256);
        assert!(y.iter().all(|v| v.as_float().is_finite()));
        let d = b.dataset();
        let x = d.get("x").expect("bound");
        let mut dot = 0.0;
        let mut nx = 0.0;
        let mut ny = 0.0;
        for i in 0..100 {
            let a = x[i].as_float();
            let bb = y[2 * i].as_float();
            dot += a * bb;
            nx += a * a;
            ny += bb * bb;
        }
        let corr = dot / (nx.sqrt() * ny.sqrt());
        assert!(corr > 0.9, "interpolation correlation too low: {corr}");
    }

    #[test]
    fn feowf_is_stable() {
        let b = registry().find("feowf").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let y = exec.array(&program, "y").expect("output");
        assert!(y.iter().all(|v| v.as_int().abs() < 1 << 24));
        assert!(y.iter().any(|v| v.as_int() != 0));
    }

    #[test]
    fn bspline_smooths() {
        let b = registry().find("bspline").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let y = exec.array(&program, "y").expect("output");
        let d = b.dataset();
        let x = d.get("x").expect("bound");
        let tv = |v: &[Value]| -> i64 {
            v.windows(2)
                .map(|w| (w[1].as_int() - w[0].as_int()).abs())
                .sum()
        };
        assert!(tv(y) < tv(x));
    }

    #[test]
    fn sewha_output_scaled_into_range() {
        let b = registry().find("sewha").copied().expect("exists");
        let program = b.compile().expect("compiles");
        let exec = Simulator::new(&program).run(&b.dataset()).expect("runs");
        let y = exec.array(&program, "y").expect("output");
        assert!(y.iter().all(|v| v.as_int().abs() < 1 << 15));
    }

    #[test]
    fn table1_metadata_is_complete() {
        for b in registry().iter() {
            assert!(!b.description.is_empty());
            assert!(!b.data_description.is_empty());
            assert!(b.paper_lines > 0);
            assert!(!b.source.is_empty());
        }
    }
}
