//! Minimized regression cases from generator-found divergences.
//!
//! When the seeded differential sweep (`tests/generated_corpus.rs`, the
//! CI `gen-differential` job) ever finds an `Engine` vs
//! `ReferenceSimulator` divergence — or a front-end crash — the
//! reproducer is minimized by hand, checked in under
//! `src/programs/regress/`, and registered here so it runs forever as
//! part of the ordinary test suite.
//!
//! The set is currently **empty**: the initial corpus + multi-thousand
//! seed hunt found no divergence. The harness still lands now (the
//! empty-set invariant below keeps the directory and this registry in
//! lock-step), so the first real find is a two-line change: drop in the
//! `.mc` file and add its entry.

use crate::{Benchmark, Suite};
use std::path::PathBuf;

/// Checked-in minimized divergence reproducers. Add new entries with
/// `suite: Suite::Regress`, an `include_str!` of the minimized source,
/// and a `data_description` naming the sweep seed that found it.
static REGRESS: [Benchmark; 0] = [];

/// The regression set, in check-in order.
pub fn regress_corpus() -> &'static [Benchmark] {
    &REGRESS
}

/// On-disk directory holding the minimized `.mc` sources (resolved from
/// the crate manifest, so tests can enforce the dir ↔ registry
/// invariant from any working directory).
pub fn regress_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/programs/regress")
}

// touch the suite type even while the set is empty so the registration
// contract above is type-checked
const _: fn(&Benchmark) -> bool = |b| matches!(b.suite, Suite::Regress);

#[cfg(test)]
mod tests {
    use super::*;

    /// The empty-set invariant: every `.mc` file under
    /// `programs/regress/` is registered, and every registered case has
    /// its source checked in. A divergence fix that lands only half of
    /// the pair fails here.
    #[test]
    fn regress_dir_and_registry_are_in_lock_step() {
        let dir = regress_dir();
        assert!(
            dir.is_dir(),
            "regress directory must exist (holds README + minimized cases): {}",
            dir.display()
        );
        let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
            .expect("readable")
            .filter_map(|e| {
                let path = e.expect("dir entry").path();
                (path.extension().is_some_and(|x| x == "mc")).then(|| {
                    path.file_stem()
                        .expect("stem")
                        .to_string_lossy()
                        .into_owned()
                })
            })
            .collect();
        on_disk.sort_unstable();
        let mut registered: Vec<String> = regress_corpus()
            .iter()
            .map(|b| b.name.to_string())
            .collect();
        registered.sort_unstable();
        assert_eq!(
            on_disk, registered,
            "regress/*.mc files and regress_corpus() entries must match 1:1"
        );
    }

    /// Every registered case stays green: compiles, validates, and both
    /// simulators agree byte-for-byte (that is the whole point of a
    /// minimized divergence case). Vacuous while the set is empty.
    #[test]
    fn regress_cases_stay_green() {
        use asip_sim::{Engine, ReferenceSimulator};
        use std::sync::Arc;
        for b in regress_corpus() {
            assert_eq!(b.suite, Suite::Regress, "{}", b.name);
            let program = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            program
                .validate()
                .unwrap_or_else(|e| panic!("{}: invalid IR: {e}", b.name));
            let data = b.dataset();
            let reference = ReferenceSimulator::new(&program)
                .run(&data)
                .unwrap_or_else(|e| panic!("{}: reference: {e:?}", b.name));
            let engine = Engine::new(Arc::new(program))
                .run(&data)
                .unwrap_or_else(|e| panic!("{}: engine: {e:?}", b.name));
            assert_eq!(engine.profile, reference.profile, "{}", b.name);
            assert_eq!(engine.memory, reference.memory, "{}", b.name);
            assert_eq!(engine.result, reference.result, "{}", b.name);
        }
    }
}
