//! Cross-block upward code motion: percolation scheduling's `move_op`
//! through block boundaries.
//!
//! An operation at the top of a block can move to the end of its
//! predecessor(s) when that is semantics-preserving:
//!
//! - the op is pure (no store, no control flow; speculative loads are
//!   allowed, as in percolation with safe memory);
//! - none of its operands is defined earlier in its own block (it truly
//!   sits at the top);
//! - moving it above the predecessor's branch does not clobber a value
//!   other paths need: its destination must not be live into any other
//!   successor of the predecessor, and must not be read by the
//!   predecessor's terminator;
//! - at a join, the op is *duplicated* into every predecessor
//!   (percolation's duplication rule), splitting its dynamic weight
//!   proportionally to predecessor execution counts.
//!
//! Note how register renaming feeds this pass: renamed definitions are
//! fresh registers, dead on every other path by construction, so level 2
//! hoists more aggressively — the paper's "renaming is an effective
//! optimization for moving operations as high as possible".

use crate::graph::ScheduledOp;
use crate::work::Work;
use asip_ir::{BlockId, InstKind};

/// Statistics from the hoist pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoistReport {
    /// Ops moved into a single predecessor.
    pub moved: usize,
    /// Ops duplicated into multiple predecessors (counted once each).
    pub duplicated: usize,
}

/// Run `passes` sweeps of upward motion over all blocks.
pub fn hoist_upward(work: &mut Work, passes: usize) -> HoistReport {
    let mut report = HoistReport::default();
    for _ in 0..passes {
        let mut changed = false;
        for bi in 0..work.blocks.len() {
            if let Some(moved_to) = try_hoist_first_op(work, BlockId(bi as u32)) {
                changed = true;
                if moved_to == 1 {
                    report.moved += 1;
                } else {
                    report.duplicated += 1;
                }
            }
        }
        if !changed {
            break;
        }
    }
    report
}

/// Attempt to hoist the first body op of `b`; returns the number of
/// predecessors it was placed into.
fn try_hoist_first_op(work: &mut Work, b: BlockId) -> Option<usize> {
    let block = &work.blocks[b.index()];
    if b == work.entry || block.ops.len() < 2 {
        return None;
    }
    let op = &block.ops[0];
    // pure, non-control, non-store; speculative loads allowed
    if op.inst.is_terminator() || matches!(op.inst.kind, InstKind::Store { .. }) {
        return None;
    }
    let dst = op.inst.dst()?;
    let preds = block.preds.clone();
    if preds.is_empty() || preds.contains(&b) {
        return None; // entry-like or self-loop latch
    }
    // operand availability is implied by being the first op: all operands
    // flow in from the predecessors
    for &p in &preds {
        let pb = &work.blocks[p.index()];
        if pb.ops.is_empty() {
            return None; // merged-away predecessor
        }
        let term = pb.ops.last().expect("non-empty");
        if !term.inst.is_terminator() {
            return None;
        }
        // the branch must not read the register we are about to define
        if term.inst.uses().contains(&dst) {
            return None;
        }
        // speculation safety: dst dead on every other path out of p
        for &s in &pb.succs {
            if s == b {
                continue;
            }
            if work.blocks[s.index()].live_in.contains(&dst) {
                return None;
            }
        }
        // and dead at p's own exit toward its other successors is covered
        // above; p-internal ops all execute before our appended op, so no
        // further anti-dependence can be violated
    }

    // perform the motion: remove from b, append before each pred's
    // terminator, weight split by predecessor execution weight
    let op = work.blocks[b.index()].ops.remove(0);
    let total_pred_weight: f64 = preds
        .iter()
        .map(|p| work.blocks[p.index()].exec_weight)
        .sum();
    let k = preds.len();
    for &p in &preds {
        let pb = &mut work.blocks[p.index()];
        let share = if total_pred_weight > 0.0 {
            pb.exec_weight / total_pred_weight
        } else {
            1.0 / k as f64
        };
        let mut copy = ScheduledOp {
            inst: op.inst.clone(),
            orig: op.orig,
            weight: op.weight * share,
        };
        // keep instruction identity unique enough for debugging dumps
        copy.inst.id = op.inst.id;
        let term_pos = pb.ops.len() - 1;
        pb.ops.insert(term_pos, copy);
        // the value now lives out of p
        pb.live_out.insert(dst);
    }
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, Operand, Program, ProgramBuilder, Ty};
    use asip_sim::{DataSet, Simulator};

    /// entry -> {left, right} -> join; join computes `s = a + b` first,
    /// where a and b are defined in entry (live through both arms).
    fn diamond() -> (Program, asip_sim::Profile) {
        let mut b = ProgramBuilder::new("dia");
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        let left = b.new_block();
        let right = b.new_block();
        let join = b.new_block();
        let a = b.new_reg(Ty::Int);
        let c = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(a, Operand::imm_int(4));
        b.mov_to(c, Operand::imm_int(5));
        let cond = b.binary(BinOp::CmpLt, a.into(), c.into());
        b.branch(cond.into(), left, right);
        b.select_block(left);
        b.jump(join);
        b.select_block(right);
        b.jump(join);
        b.select_block(join);
        let s = b.binary(BinOp::Add, a.into(), c.into());
        b.store(y, Operand::imm_int(0), s.into());
        b.ret(None);
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        (p, profile)
    }

    #[test]
    fn join_op_duplicates_into_both_arms() {
        let (p, profile) = diamond();
        let mut w = Work::new(&p, &profile);
        let report = hoist_upward(&mut w, 1);
        assert_eq!(report.duplicated, 1, "the add moves into both arms");
        // the join lost its first op; both arms gained one
        assert_eq!(
            w.blocks[1]
                .ops
                .iter()
                .filter(|o| matches!(o.inst.kind, InstKind::Binary { .. }))
                .count(),
            1
        );
        assert_eq!(
            w.blocks[2]
                .ops
                .iter()
                .filter(|o| matches!(o.inst.kind, InstKind::Binary { .. }))
                .count(),
            1
        );
        // weight split: each arm executed once of two entries
        let w1 = w.blocks[1].ops[0].weight;
        let w2 = w.blocks[2].ops[0].weight;
        assert!((w1 + w2 - 1.0).abs() < 1e-9, "weights conserved");
    }

    #[test]
    fn hoist_refuses_when_dst_live_on_sibling_path() {
        // entry branches to {use_t, skip}; use_t computes t = a * 2 and
        // both paths join; if t were live into skip... construct: t is
        // defined at top of use_t, and skip also READS t (from entry's
        // initial def), so hoisting t's redefinition above the branch
        // would clobber skip's value
        let mut b = ProgramBuilder::new("spec");
        let y = b.output_array("y", Ty::Int, 2);
        let entry = b.entry_block();
        let use_t = b.new_block();
        let skip = b.new_block();
        let t = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(t, Operand::imm_int(100));
        let cond = b.binary(BinOp::CmpLt, t.into(), Operand::imm_int(3));
        b.branch(cond.into(), use_t, skip);
        b.select_block(use_t);
        b.binary_to(t, BinOp::Mul, Operand::imm_int(2), Operand::imm_int(3));
        b.store(y, Operand::imm_int(0), t.into());
        b.ret(None);
        b.select_block(skip);
        b.store(y, Operand::imm_int(1), t.into()); // reads entry's t
        b.ret(None);
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let mut w = Work::new(&p, &profile);
        let before: usize = w.blocks[1].ops.len();
        let report = hoist_upward(&mut w, 2);
        assert_eq!(report.moved + report.duplicated, 0, "unsafe hoist refused");
        assert_eq!(w.blocks[1].ops.len(), before);
    }

    #[test]
    fn hoist_refuses_branch_condition_clobber() {
        // the op at the top of the target block defines the very register
        // the predecessor's branch reads
        let mut b = ProgramBuilder::new("cond");
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        let then_b = b.new_block();
        let else_b = b.new_block();
        let c = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.binary_to(c, BinOp::CmpLt, Operand::imm_int(1), Operand::imm_int(2));
        b.branch(c.into(), then_b, else_b);
        b.select_block(then_b);
        b.binary_to(c, BinOp::Add, Operand::imm_int(7), Operand::imm_int(8));
        b.store(y, Operand::imm_int(0), c.into());
        b.ret(None);
        b.select_block(else_b);
        b.ret(None);
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let mut w = Work::new(&p, &profile);
        let report = hoist_upward(&mut w, 1);
        assert_eq!(
            report.moved + report.duplicated,
            0,
            "must not clobber the branch condition"
        );
    }

    #[test]
    fn stores_and_terminators_never_hoist() {
        let (p, profile) = diamond();
        let mut w = Work::new(&p, &profile);
        hoist_upward(&mut w, 3);
        // the store and ret stayed in the join
        let join = &w.blocks[3];
        assert!(join
            .ops
            .iter()
            .any(|o| matches!(o.inst.kind, InstKind::Store { .. })));
        assert!(join.ops.last().expect("nonempty").inst.is_terminator());
    }

    #[test]
    fn weight_conservation_across_hoisting() {
        let (p, profile) = diamond();
        let mut w = Work::new(&p, &profile);
        let total_before: f64 = w
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .map(|o| o.weight)
            .sum();
        hoist_upward(&mut w, 3);
        let total_after: f64 = w
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .map(|o| o.weight)
            .sum();
        assert!((total_before - total_after).abs() < 1e-9);
    }
}
