//! Register renaming (optimization level 2).
//!
//! Every definition inside a block receives a fresh register, and uses
//! are rewritten to read the current version. Values that are live out of
//! the block are copied back to their original registers at the block's
//! bottom (before the terminator) so cross-block consumers still find
//! them — these are the "renamed register" copies the paper describes.
//!
//! Consequences for the scheduled graph (both observed in the paper):
//!
//! 1. Anti- and output-dependences inside the block disappear, so the
//!    compactor can hoist producers to their earliest data-ready cycle —
//!    far from consumers pinned late by recurrences.
//! 2. Cross-block (and cross-kernel-iteration) data flow is routed
//!    through `mov`s, breaking direct producer→consumer chains.

use crate::work::Work;
use asip_ir::{Inst, InstId, InstKind, Operand, Reg, UnOp};
use std::collections::HashMap;

/// Statistics from a renaming pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameReport {
    /// Definitions given fresh registers.
    pub renamed_defs: usize,
    /// Boundary copies inserted for live-out values.
    pub boundary_movs: usize,
}

/// Rename every block of `work` in place.
pub fn rename_registers(work: &mut Work) -> RenameReport {
    let mut report = RenameReport::default();
    for bi in 0..work.blocks.len() {
        if work.blocks[bi].ops.is_empty() {
            continue;
        }
        // current version of each original register within this block
        let mut version: HashMap<Reg, Reg> = HashMap::new();
        let mut fresh_types = Vec::new();

        {
            let reg_types = &work.reg_types;
            let next_base = reg_types.len() as u32;
            let wb = &mut work.blocks[bi];
            for op in &mut wb.ops {
                op.inst.map_uses(|r| version.get(&r).copied().unwrap_or(r));
                if let Some(d) = op.inst.dst() {
                    let ty = if d.index() < reg_types.len() {
                        reg_types[d.index()]
                    } else {
                        fresh_types[d.index() - reg_types.len()]
                    };
                    let fresh = Reg(next_base + fresh_types.len() as u32);
                    fresh_types.push(ty);
                    op.inst.set_dst(fresh);
                    version.insert(d, fresh);
                    report.renamed_defs += 1;
                }
            }
        }
        work.reg_types.extend(fresh_types);

        // boundary copies for live-out originals, inserted before the
        // terminator
        let wb = &mut work.blocks[bi];
        let term_pos = wb
            .ops
            .iter()
            .rposition(|o| o.inst.is_terminator())
            .unwrap_or(wb.ops.len());
        let exec_weight = wb.exec_weight;
        let mut movs = Vec::new();
        let mut pairs: Vec<(Reg, Reg)> = version
            .iter()
            .filter(|(orig, _)| wb.live_out.contains(orig))
            .map(|(o, f)| (*o, *f))
            .collect();
        pairs.sort_by_key(|(o, _)| o.0);
        for (orig, fresh) in pairs {
            movs.push(crate::graph::ScheduledOp {
                inst: Inst::new(
                    InstId(u32::MAX), // synthetic: never present in the profile
                    InstKind::Unary {
                        op: UnOp::Mov,
                        dst: orig,
                        src: Operand::Reg(fresh),
                    },
                ),
                orig: InstId(u32::MAX),
                weight: exec_weight,
            });
            report.boundary_movs += 1;
        }
        // the terminator may read a renamed register; it was already
        // rewritten above, so simple splicing is safe
        let tail = wb.ops.split_off(term_pos);
        wb.ops.extend(movs);
        wb.ops.extend(tail);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::pipeline_loops;
    use asip_ir::{BinOp, Program, ProgramBuilder, Ty};
    use asip_sim::{DataSet, Simulator};

    fn counted_loop() -> (Program, asip_sim::Profile) {
        let mut b = ProgramBuilder::new("cl");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        let g = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(6));
        b.branch(g.into(), body, exit);
        b.select_block(body);
        let t = b.binary(BinOp::Mul, i.into(), Operand::imm_int(3));
        b.binary_to(acc, BinOp::Add, acc.into(), t.into());
        b.binary_to(i, BinOp::Add, i.into(), Operand::imm_int(1));
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(6));
        b.branch(c.into(), body, exit);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        (p, profile)
    }

    #[test]
    fn defs_get_fresh_registers() {
        let (p, profile) = counted_loop();
        let orig_regs = p.reg_types.len();
        let mut w = Work::new(&p, &profile);
        let report = rename_registers(&mut w);
        assert!(report.renamed_defs > 0);
        assert!(w.reg_types.len() > orig_regs);
        // no two defs in a block share a destination anymore
        for wb in &w.blocks {
            let mut seen = std::collections::HashSet::new();
            for op in &wb.ops {
                if let Some(d) = op.inst.dst() {
                    assert!(seen.insert(d), "duplicate def of {d} after renaming");
                }
            }
        }
    }

    #[test]
    fn boundary_movs_restore_live_outs() {
        let (p, profile) = counted_loop();
        let mut w = Work::new(&p, &profile);
        let report = rename_registers(&mut w);
        assert!(report.boundary_movs > 0);
        // body block: i and acc live out -> two movs before the branch
        let body = &w.blocks[1];
        let n = body.ops.len();
        assert!(body.ops[n - 1].inst.is_terminator());
        let movs: Vec<_> = body
            .ops
            .iter()
            .filter(|o| matches!(o.inst.kind, InstKind::Unary { op: UnOp::Mov, .. }))
            .collect();
        assert_eq!(movs.len(), 2, "i and acc copied back");
        // movs write the ORIGINAL registers
        let mov_dsts: Vec<Reg> = movs.iter().filter_map(|o| o.inst.dst()).collect();
        assert!(mov_dsts.contains(&Reg(0)));
        assert!(mov_dsts.contains(&Reg(1)));
    }

    #[test]
    fn uses_read_current_version() {
        let (p, profile) = counted_loop();
        let mut w = Work::new(&p, &profile);
        rename_registers(&mut w);
        // in the body, the compare at the bottom must read the *renamed*
        // version of i, not the original
        let body = &w.blocks[1];
        let cmp = body
            .ops
            .iter()
            .rfind(|o| {
                matches!(
                    o.inst.kind,
                    InstKind::Binary {
                        op: BinOp::CmpLt,
                        ..
                    }
                )
            })
            .expect("compare present");
        let orig_i = Reg(0);
        assert!(
            !cmp.inst.uses().contains(&orig_i),
            "bottom compare reads the renamed i"
        );
    }

    #[test]
    fn terminator_stays_last_and_weights_positive() {
        let (p, profile) = counted_loop();
        let mut w = Work::new(&p, &profile);
        pipeline_loops(&mut w, 2);
        rename_registers(&mut w);
        for wb in &w.blocks {
            if wb.ops.is_empty() {
                continue;
            }
            assert!(wb.ops.last().expect("nonempty").inst.is_terminator());
            assert_eq!(wb.ops.iter().filter(|o| o.inst.is_terminator()).count(), 1);
            assert!(wb.ops.iter().all(|o| o.weight >= 0.0));
        }
    }

    #[test]
    fn renaming_composes_with_pipelining() {
        let (p, profile) = counted_loop();
        let mut w = Work::new(&p, &profile);
        pipeline_loops(&mut w, 2);
        let report = rename_registers(&mut w);
        // unrolled body has 2 defs of acc, 2 of i, 2 muls, 2 cmps = 8 defs
        // (entry and exit add more)
        assert!(report.renamed_defs >= 8);
        // cross-iteration flow inside the kernel is direct: the second
        // mul reads the first i-update's *fresh* register (not through a mov)
        let body = &w.blocks[1];
        let first_i_update = body
            .ops
            .iter()
            .find(|o| {
                matches!(
                    &o.inst.kind,
                    InstKind::Binary {
                        op: BinOp::Add,
                        rhs: Operand::ImmInt(1),
                        ..
                    }
                )
            })
            .expect("i update");
        let fresh_i = first_i_update.inst.dst().expect("has dst");
        let second_mul = body
            .ops
            .iter()
            .filter(|o| matches!(o.inst.kind, InstKind::Binary { op: BinOp::Mul, .. }))
            .nth(1)
            .expect("second mul");
        assert!(second_mul.inst.uses().contains(&fresh_i));
    }

    use asip_ir::Operand;
}
