//! If-conversion: percolation scheduling's `move_test` effect.
//!
//! Percolation moves operations above conditionals (speculation) and
//! unifies short branch arms into their parent node, so the analyzer
//! sees the dataflow of both paths in one region. We model the
//! *analysis-relevant* outcome: a diamond or triangle whose arms are
//! short, pure (no stores, no further control flow) single-entry blocks
//! is folded into its parent block. Each absorbed op keeps its own
//! measured execution count, so an arm taken 10% of the time weighs
//! exactly what the profile says — the schedule graph is an analysis
//! artifact, never executed, so this is speculation accounting, not a
//! semantic rewrite.
//!
//! This is what lets a loop body like `edge`'s
//! `if (gx < 0) gx = -gx;` collapse into a single-block natural loop
//! that the pipeliner can kernel-form.

use crate::work::Work;
use asip_ir::{BlockId, InstKind};

/// Result of the if-conversion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfConvertReport {
    /// Diamonds/triangles folded.
    pub converted: usize,
}

/// Fold convertible conditionals until none remain (bounded).
///
/// `max_arm_ops` caps how large an arm may be (speculating a huge arm
/// into the main path is not what a 1995 compiler would do).
pub fn if_convert(work: &mut Work, max_arm_ops: usize) -> IfConvertReport {
    let mut report = IfConvertReport::default();
    // bounded fixpoint: each conversion removes one branch
    for _ in 0..work.blocks.len() * 2 {
        let Some(p) = find_convertible(work, max_arm_ops) else {
            break;
        };
        convert(work, p);
        report.converted += 1;
    }
    report
}

/// A block `p` is convertible when it ends in `br c, t, f` and:
/// - triangle: `t` is a pure arm from `p` to `f`; or
/// - diamond: `t` and `f` are pure arms from `p` to a common join.
fn find_convertible(work: &Work, max_arm_ops: usize) -> Option<BlockId> {
    for p in &work.blocks {
        if p.ops.is_empty() {
            continue;
        }
        let Some(term) = p.ops.last() else { continue };
        let InstKind::Branch {
            then_target,
            else_target,
            ..
        } = term.inst.kind
        else {
            continue;
        };
        if then_target == else_target {
            continue;
        }
        let t_arm = is_pure_arm(work, p.id, then_target, max_arm_ops);
        let f_arm = is_pure_arm(work, p.id, else_target, max_arm_ops);
        let convertible = match (t_arm, f_arm) {
            // diamond: both arms join at the same block
            (Some(tj), Some(fj)) => tj == fj,
            // triangle: one arm falls through to the other side
            (Some(tj), None) => tj == else_target,
            (None, Some(fj)) => fj == then_target,
            (None, None) => false,
        };
        if convertible {
            return Some(p.id);
        }
    }
    None
}

/// An arm is a block with `parent` as its only predecessor, a single
/// jump successor, no stores and no other side effects; returns its
/// join target.
fn is_pure_arm(work: &Work, parent: BlockId, arm: BlockId, max_arm_ops: usize) -> Option<BlockId> {
    if arm == parent {
        return None;
    }
    let b = &work.blocks[arm.index()];
    if b.ops.is_empty() || b.preds != [parent] {
        return None;
    }
    let term = b.ops.last()?;
    let InstKind::Jump { target } = term.inst.kind else {
        return None;
    };
    let body = &b.ops[..b.ops.len() - 1];
    if body.len() > max_arm_ops {
        return None;
    }
    if body
        .iter()
        .any(|o| o.inst.is_terminator() || matches!(o.inst.kind, InstKind::Store { .. }))
    {
        return None;
    }
    Some(target)
}

/// Fold the conditional at `p`: absorb the arm bodies (keeping their
/// weights), retarget `p` to the join with an unconditional jump, and
/// empty the arm blocks.
fn convert(work: &mut Work, p: BlockId) {
    let term = work.blocks[p.index()].ops.last().expect("checked").clone();
    let InstKind::Branch {
        then_target,
        else_target,
        ..
    } = term.inst.kind
    else {
        unreachable!("checked by find_convertible");
    };
    let max_arm = usize::MAX; // re-validated below via is_pure_arm
    let t_arm = is_pure_arm(work, p, then_target, max_arm);
    let f_arm = is_pure_arm(work, p, else_target, max_arm);

    let (arms, join) = match (t_arm, f_arm) {
        (Some(tj), Some(fj)) if tj == fj => (vec![then_target, else_target], tj),
        (Some(tj), _) if tj == else_target => (vec![then_target], else_target),
        (_, Some(fj)) if fj == then_target => (vec![else_target], then_target),
        _ => unreachable!("find_convertible verified the shape"),
    };

    // absorb arm bodies into p, in arm order, before the terminator slot
    let mut absorbed = Vec::new();
    let mut union_live_out = work.blocks[p.index()].live_out.clone();
    for &a in &arms {
        let ab = &mut work.blocks[a.index()];
        let mut body: Vec<_> = ab.ops.drain(..).collect();
        body.pop(); // the arm's jump
        absorbed.extend(body);
        union_live_out.extend(ab.live_out.iter().copied());
        ab.succs.clear();
        ab.preds.clear();
    }
    let pb = &mut work.blocks[p.index()];
    let branch = pb.ops.pop().expect("terminator present");
    pb.ops.extend(absorbed);
    // the branch becomes an unconditional jump to the join, keeping the
    // branch's dynamic weight (it still executes as a control transfer)
    pb.ops.push(crate::graph::ScheduledOp {
        inst: asip_ir::Inst::new(branch.inst.id, InstKind::Jump { target: join }),
        orig: branch.orig,
        weight: branch.weight,
    });
    pb.succs = vec![join];
    pb.live_out = union_live_out;

    // rewire the join's preds: p replaces the absorbed arms
    let jb = &mut work.blocks[join.index()];
    jb.preds.retain(|pr| !arms.contains(pr) && *pr != p);
    jb.preds.push(p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, Operand, Program, ProgramBuilder, Ty, UnOp};
    use asip_sim::{DataSet, Simulator};

    /// The edge-detector abs idiom: loop body with `if (g < 0) g = -g;`.
    fn abs_loop() -> (Program, asip_sim::Profile) {
        let program = asip_frontend::compile(
            "absloop",
            r#"
            input int x[16]; output int y[16];
            void main() {
                int i; int g;
                for (i = 0; i < 16; i = i + 1) {
                    g = x[i] - 8;
                    if (g < 0) { g = -g; }
                    y[i] = g;
                }
            }
            "#,
        )
        .expect("compiles");
        let mut d = DataSet::new();
        d.bind_ints("x", (0..16).collect());
        let profile = Simulator::new(&program).run(&d).expect("runs").profile;
        (program, profile)
    }

    #[test]
    fn triangle_folds_and_enables_pipelining() {
        let (p, profile) = abs_loop();
        let mut w = Work::new(&p, &profile);
        w.merge_jump_chains();
        let report = if_convert(&mut w, 8);
        w.merge_jump_chains(); // folding leaves a jump chain, as the driver knows
        assert!(report.converted >= 1, "the abs triangle must fold");
        // after folding, some block self-loops (the whole body is one
        // region) — exactly the shape the pipeliner wants
        assert!(
            w.blocks
                .iter()
                .any(|b| !b.ops.is_empty() && b.succs.contains(&b.id)),
            "folded loop body should be a single-block natural loop"
        );
        // the negated-g op kept its measured (partial) execution count:
        // fewer than the 16 iterations, more than zero
        let neg = w
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .find(|o| matches!(o.inst.kind, InstKind::Unary { op: UnOp::Neg, .. }))
            .expect("neg absorbed somewhere");
        assert!(neg.weight > 0.0 && neg.weight < 16.0);
    }

    #[test]
    fn non_control_weight_is_conserved() {
        // the absorbed arm's jump disappears (it no longer exists as a
        // control transfer), but every computing op keeps its weight
        let (p, profile) = abs_loop();
        let mut w = Work::new(&p, &profile);
        let total = |w: &Work| -> f64 {
            w.blocks
                .iter()
                .flat_map(|b| b.ops.iter())
                .filter(|o| !o.inst.is_terminator())
                .map(|o| o.weight)
                .sum()
        };
        let before = total(&w);
        if_convert(&mut w, 8);
        assert!((before - total(&w)).abs() < 1e-9);
    }

    #[test]
    fn arms_with_stores_do_not_fold() {
        let program = asip_frontend::compile(
            "storearm",
            r#"
            input int x[4]; output int y[4];
            void main() {
                int i;
                for (i = 0; i < 4; i = i + 1) {
                    if (x[i] > 0) { y[i] = 1; }
                }
            }
            "#,
        )
        .expect("compiles");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![-1, 1, -1, 1]);
        let profile = Simulator::new(&program).run(&d).expect("runs").profile;
        let mut w = Work::new(&program, &profile);
        w.merge_jump_chains();
        let report = if_convert(&mut w, 8);
        assert_eq!(report.converted, 0, "stores must not be speculated");
    }

    #[test]
    fn arm_size_cap_respected() {
        let (p, profile) = abs_loop();
        let mut w = Work::new(&p, &profile);
        w.merge_jump_chains();
        let report = if_convert(&mut w, 0);
        assert_eq!(report.converted, 0, "cap of zero folds nothing");
    }

    #[test]
    fn diamond_folds_both_arms() {
        let program = asip_frontend::compile(
            "diamond",
            r#"
            input int x[8]; output int y[8];
            void main() {
                int i; int g;
                for (i = 0; i < 8; i = i + 1) {
                    if (x[i] > 0) { g = x[i] * 2; } else { g = x[i] * 3; }
                    y[i] = g;
                }
            }
            "#,
        )
        .expect("compiles");
        let mut d = DataSet::new();
        d.bind_ints("x", vec![-2, 2, -2, 2, -2, 2, -2, 2]);
        let profile = Simulator::new(&program).run(&d).expect("runs").profile;
        let mut w = Work::new(&program, &profile);
        w.merge_jump_chains();
        let report = if_convert(&mut w, 8);
        assert!(report.converted >= 1);
        // both multiplies coexist in one region, each at half weight
        let muls: Vec<f64> = w
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|o| {
                matches!(
                    o.inst.kind,
                    InstKind::Binary {
                        op: BinOp::Mul,
                        rhs: Operand::ImmInt(2 | 3),
                        ..
                    }
                )
            })
            .map(|o| o.weight)
            .collect();
        assert_eq!(muls.len(), 2);
        assert!(muls.iter().all(|&w| (w - 4.0).abs() < 1e-9));
        let _ = Ty::Int;
        let _ = ProgramBuilder::new("unused");
    }
}
