//! The scheduled program graph: the optimizer's output and the sequence
//! detector's input.

use asip_ir::{BlockId, Inst, InstId, OpClass, Program};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`ScheduleGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into [`ScheduleGraph::nodes`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operation placed in a schedule node.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    /// The (possibly renamed/cloned) instruction.
    pub inst: Inst,
    /// Original instruction id, for profile attribution. Several copies
    /// (loop-pipelined iterations, duplicated hoists) may share one
    /// original.
    pub orig: InstId,
    /// Dynamic execution count attributed to this copy. Copies of an
    /// unrolled loop body split the original count evenly, so summing
    /// weights over copies reproduces the measured count.
    pub weight: f64,
}

/// A wide instruction: operations issued together in one cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedNode {
    /// Operations in this node.
    pub ops: Vec<ScheduledOp>,
    /// Successor nodes (control flow).
    pub succs: Vec<NodeId>,
    /// Predecessor nodes.
    pub preds: Vec<NodeId>,
    /// The source block this node descends from (metadata for dumps).
    pub block: BlockId,
}

/// The scheduled program graph.
///
/// Level-0 graphs have one op per node in sequential order; optimized
/// graphs have compacted nodes. Program-level context (which arrays hold
/// floats, the original profile total) travels with the graph so the
/// detector can classify ops and normalize frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleGraph {
    /// Program name.
    pub name: String,
    /// All nodes.
    pub nodes: Vec<SchedNode>,
    /// Entry node.
    pub entry: NodeId,
    /// `true` for arrays with float elements (drives `load` vs `fload`).
    pub arrays_float: Vec<bool>,
    /// Total dynamic operations of the *original* profiled run. All
    /// frequencies are percentages of this, at every optimization level,
    /// so levels are directly comparable (the paper plots them on one
    /// axis).
    pub total_profile_ops: u64,
    /// True for optimized graphs: percolation's code motions can bring
    /// *any* flow-dependent pair within one block region together, so the
    /// sequence detector treats whole-region flow as potentially
    /// chainable ("search a much broader set of possibilities", paper
    /// Section 4). Sequential (level-0) graphs leave this false: there
    /// the ordering is fixed and only window-adjacent ops can chain.
    pub region_chaining: bool,
}

impl ScheduleGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &SchedNode {
        &self.nodes[id.index()]
    }

    /// The op class of a scheduled op in this graph's context.
    pub fn class_of(&self, op: &ScheduledOp) -> OpClass {
        op.inst
            .class_with(|a| self.arrays_float.get(a.index()).copied().unwrap_or(false))
    }

    /// Iterate over all scheduled ops with their node ids.
    pub fn ops(&self) -> impl Iterator<Item = (NodeId, &ScheduledOp)> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| n.ops.iter().map(move |op| (NodeId(i as u32), op)))
    }

    /// Total scheduled weight of chainable (non-control) ops.
    pub fn chainable_weight(&self) -> f64 {
        self.ops()
            .filter(|(_, op)| self.class_of(op).is_chainable())
            .map(|(_, op)| op.weight)
            .sum()
    }

    /// Maximum number of ops in any node (the graph's "issue width").
    pub fn max_width(&self) -> usize {
        self.nodes.iter().map(|n| n.ops.len()).max().unwrap_or(0)
    }

    /// Cycle count estimate: sum over nodes of (node entry weight),
    /// where a node's entry weight is the maximum op weight it contains
    /// (every op in a node issues in the same cycle).
    ///
    /// Used by the ablation benches to show pipelining shortens the
    /// dynamic schedule even though total work is constant.
    pub fn weighted_cycles(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.ops.iter().map(|o| o.weight).fold(0.0_f64, f64::max))
            .sum()
    }

    /// Build the level-0 ("No Optimization") graph: one op per node, in
    /// sequential program order, weights from the profile.
    pub fn sequential(program: &Program, profile: &asip_sim::Profile) -> Self {
        let arrays_float: Vec<bool> = program
            .arrays
            .iter()
            .map(|a| a.ty == asip_ir::Ty::Float)
            .collect();
        let mut nodes: Vec<SchedNode> = Vec::with_capacity(program.inst_count());
        // first node of each block, for wiring cross-block edges
        let mut block_first: Vec<Option<NodeId>> = vec![None; program.blocks.len()];
        let mut block_last: Vec<Option<NodeId>> = vec![None; program.blocks.len()];

        for block in program.blocks() {
            let mut prev: Option<NodeId> = None;
            for inst in &block.insts {
                let id = NodeId(nodes.len() as u32);
                nodes.push(SchedNode {
                    ops: vec![ScheduledOp {
                        inst: inst.clone(),
                        orig: inst.id,
                        weight: profile.count(inst.id) as f64,
                    }],
                    succs: Vec::new(),
                    preds: Vec::new(),
                    block: block.id,
                });
                if let Some(p) = prev {
                    nodes[p.index()].succs.push(id);
                    nodes[id.index()].preds.push(p);
                }
                if block_first[block.id.index()].is_none() {
                    block_first[block.id.index()] = Some(id);
                }
                block_last[block.id.index()] = Some(id);
                prev = Some(id);
            }
        }
        // cross-block edges: last node of a block -> first node of each successor
        for block in program.blocks() {
            let Some(last) = block_last[block.id.index()] else {
                continue;
            };
            for s in block.successors() {
                if let Some(first) = block_first[s.index()] {
                    nodes[last.index()].succs.push(first);
                    nodes[first.index()].preds.push(last);
                }
            }
        }
        let entry = block_first[program.entry.index()].unwrap_or(NodeId(0));
        ScheduleGraph {
            name: program.name.clone(),
            nodes,
            entry,
            arrays_float,
            total_profile_ops: profile.total_ops(),
            region_chaining: false,
        }
    }

    /// Structural sanity check: edges are symmetric and in range.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            for &s in &n.succs {
                if s.index() >= self.nodes.len() {
                    return Err(format!("n{i} has out-of-range successor {s}"));
                }
                if !self.nodes[s.index()].preds.contains(&NodeId(i as u32)) {
                    return Err(format!("edge n{i} -> {s} missing reverse edge"));
                }
            }
            for op in &n.ops {
                if op.weight < 0.0 || !op.weight.is_finite() {
                    return Err(format!("n{i} has invalid weight {}", op.weight));
                }
            }
        }
        if self.entry.index() >= self.nodes.len() && !self.nodes.is_empty() {
            return Err("entry out of range".into());
        }
        Ok(())
    }
}

impl fmt::Display for ScheduleGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule \"{}\" ({} nodes) {{",
            self.name,
            self.nodes.len()
        )?;
        for (i, n) in self.nodes.iter().enumerate() {
            let succs: Vec<String> = n.succs.iter().map(|s| s.to_string()).collect();
            writeln!(f, "  n{i} [{}] -> {}", n.block, succs.join(", "))?;
            for op in &n.ops {
                writeln!(
                    f,
                    "    {} (w={:.1})",
                    asip_ir::print::DisplayInst(&op.inst),
                    op.weight
                )?;
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
    use asip_sim::{DataSet, Simulator};

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new("g");
        let x = b.input_array("x", Ty::Int, 4);
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(body);
        b.select_block(body);
        let v = b.load(x, i.into());
        b.binary_to(acc, BinOp::Add, acc.into(), v.into());
        b.binary_to(i, BinOp::Add, i.into(), Operand::imm_int(1));
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(4));
        b.branch(c.into(), body, exit);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        b.finish().expect("valid")
    }

    fn run(p: &Program) -> asip_sim::Profile {
        let mut d = DataSet::new();
        d.bind_ints("x", vec![1, 2, 3, 4]);
        Simulator::new(p).run(&d).expect("runs").profile
    }

    #[test]
    fn sequential_graph_mirrors_program() {
        let p = loop_program();
        let profile = run(&p);
        let g = ScheduleGraph::sequential(&p, &profile);
        assert_eq!(g.node_count(), p.inst_count());
        g.check_invariants().expect("invariants");
        assert_eq!(g.max_width(), 1);
        // weights match profile counts
        for (_, op) in g.ops() {
            assert_eq!(op.weight, profile.count(op.orig) as f64);
        }
        assert_eq!(g.total_profile_ops, profile.total_ops());
    }

    #[test]
    fn sequential_graph_has_back_edge() {
        let p = loop_program();
        let g = ScheduleGraph::sequential(&p, &run(&p));
        // the branch node of the body points back to the body's first node
        let branch_node = g
            .nodes
            .iter()
            .position(|n| n.ops[0].inst.is_terminator() && n.succs.len() == 2)
            .expect("branch node");
        let body_first = g
            .nodes
            .iter()
            .position(|n| n.block == BlockId(1))
            .expect("body node");
        assert!(g.nodes[branch_node]
            .succs
            .contains(&NodeId(body_first as u32)));
    }

    #[test]
    fn chainable_weight_excludes_control() {
        let p = loop_program();
        let profile = run(&p);
        let g = ScheduleGraph::sequential(&p, &profile);
        let total: f64 = g.ops().map(|(_, o)| o.weight).sum();
        assert!(g.chainable_weight() < total);
        assert!(g.chainable_weight() > 0.0);
    }

    #[test]
    fn display_dump_mentions_nodes() {
        let p = loop_program();
        let g = ScheduleGraph::sequential(&p, &run(&p));
        let s = g.to_string();
        assert!(s.contains("schedule \"g\""));
        assert!(s.contains("n0"));
    }

    #[test]
    fn invariant_check_catches_asymmetric_edge() {
        let p = loop_program();
        let mut g = ScheduleGraph::sequential(&p, &run(&p));
        g.nodes[0].succs.push(NodeId(2));
        assert!(g.check_invariants().is_err());
    }
}
