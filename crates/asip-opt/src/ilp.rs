//! Instruction-level-parallelism characterization.
//!
//! The paper's closing section names this as the next feedback channel:
//! *"we are interested in providing feedback on the use of
//! multiple-issue instruction-set architectures by characterizing the
//! instruction level parallelism of an application suite using compiler
//! optimizations."* This module implements that study: schedule each
//! benchmark at a sweep of issue widths and report the achieved
//! parallelism, the speedup over single-issue, and the knee where wider
//! issue stops paying — the designer's answer to "how many slots should
//! this ASIP issue per cycle?".

use crate::graph::ScheduleGraph;
use crate::optimizer::{OptConfig, OptLevel, Optimizer};
use asip_ir::Program;
use asip_sim::Profile;
use serde::{Deserialize, Serialize};

/// ILP measurements for one issue width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IlpPoint {
    /// Issue width scheduled for.
    pub width: usize,
    /// Weighted dynamic schedule length (cycles).
    pub cycles: f64,
    /// Dynamic operations per cycle actually achieved.
    pub ops_per_cycle: f64,
    /// Speedup over the width-1 schedule.
    pub speedup_vs_scalar: f64,
}

/// An ILP characterization: one point per issue width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IlpReport {
    /// Program name.
    pub name: String,
    /// Optimization level the schedule used.
    pub level: OptLevel,
    /// Measurements, in increasing width order.
    pub points: Vec<IlpPoint>,
}

impl IlpReport {
    /// The smallest width achieving at least `fraction` (e.g. `0.95`)
    /// of the widest configuration's speedup — the issue width a
    /// designer should build.
    ///
    /// # Panics
    ///
    /// Panics if the report has no points.
    pub fn recommended_width(&self, fraction: f64) -> usize {
        let best = self
            .points
            .iter()
            .map(|p| p.speedup_vs_scalar)
            .fold(0.0_f64, f64::max);
        self.points
            .iter()
            .find(|p| p.speedup_vs_scalar >= fraction * best)
            .map(|p| p.width)
            .expect("reports always have points")
    }

    /// The peak ops-per-cycle across the sweep.
    pub fn peak_ilp(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.ops_per_cycle)
            .fold(0.0_f64, f64::max)
    }
}

/// Total dynamic op weight scheduled in a graph.
fn total_weight(graph: &ScheduleGraph) -> f64 {
    graph.ops().map(|(_, o)| o.weight).sum()
}

/// Characterize a profiled program's ILP at the given optimization
/// level over a sweep of issue widths.
pub fn characterize(
    program: &Program,
    profile: &Profile,
    level: OptLevel,
    widths: &[usize],
) -> IlpReport {
    assert!(!widths.is_empty(), "need at least one width");
    let mut points = Vec::with_capacity(widths.len());
    let scalar_cycles = {
        let g = Optimizer::new(level)
            .with_config(OptConfig {
                width: 1,
                ..OptConfig::default()
            })
            .run(program, profile);
        g.weighted_cycles()
    };
    for &width in widths {
        let g = Optimizer::new(level)
            .with_config(OptConfig {
                width,
                ..OptConfig::default()
            })
            .run(program, profile);
        let cycles = g.weighted_cycles();
        points.push(IlpPoint {
            width,
            cycles,
            ops_per_cycle: total_weight(&g) / cycles.max(1.0),
            speedup_vs_scalar: scalar_cycles / cycles.max(1.0),
        });
    }
    IlpReport {
        name: program.name.clone(),
        level,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_sim::{DataSet, Simulator};

    fn mac_loop() -> (Program, Profile) {
        let program = asip_frontend::compile(
            "ilp",
            r#"
            input int x[64]; input int c[8]; output int y[64];
            void main() {
                int i; int j; int acc;
                for (i = 0; i < 64; i = i + 1) {
                    acc = 0;
                    for (j = 0; j < 8; j = j + 1) {
                        acc = acc + c[j] * x[(i + j) % 64];
                    }
                    y[i] = acc;
                }
            }
            "#,
        )
        .expect("compiles");
        let mut data = DataSet::new();
        data.bind_ints("x", (0..64).collect());
        data.bind_ints("c", (1..=8).collect());
        let profile = Simulator::new(&program).run(&data).expect("runs").profile;
        (program, profile)
    }

    #[test]
    fn wider_issue_never_slower() {
        let (p, profile) = mac_loop();
        let report = characterize(&p, &profile, OptLevel::Pipelined, &[1, 2, 4, 8]);
        assert_eq!(report.points.len(), 4);
        for w in report.points.windows(2) {
            assert!(
                w[1].cycles <= w[0].cycles + 1e-9,
                "width {} slower than width {}",
                w[1].width,
                w[0].width
            );
        }
        // width 1 is the scalar baseline
        assert!((report.points[0].speedup_vs_scalar - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ilp_exceeds_one_for_parallel_kernels() {
        let (p, profile) = mac_loop();
        let report = characterize(&p, &profile, OptLevel::Pipelined, &[4]);
        assert!(
            report.points[0].ops_per_cycle > 1.3,
            "a MAC kernel has real ILP, got {:.2}",
            report.points[0].ops_per_cycle
        );
        assert!(report.peak_ilp() >= report.points[0].ops_per_cycle);
    }

    #[test]
    fn recommended_width_finds_the_knee() {
        let (p, profile) = mac_loop();
        let report = characterize(&p, &profile, OptLevel::Pipelined, &[1, 2, 4, 8, 16]);
        let rec = report.recommended_width(0.95);
        assert!(rec >= 2, "parallel kernel should want multi-issue");
        assert!(rec <= 8, "ILP saturates well before width 16");
    }

    #[test]
    fn optimization_raises_ilp() {
        let (p, profile) = mac_loop();
        let r0 = characterize(&p, &profile, OptLevel::None, &[4]);
        let r1 = characterize(&p, &profile, OptLevel::Pipelined, &[4]);
        // level 0 graphs are sequential regardless of width
        assert!((r0.points[0].ops_per_cycle - 1.0).abs() < 1e-9);
        assert!(r1.points[0].ops_per_cycle > r0.points[0].ops_per_cycle);
    }

    #[test]
    #[should_panic(expected = "at least one width")]
    fn empty_width_sweep_panics() {
        let (p, profile) = mac_loop();
        let _ = characterize(&p, &profile, OptLevel::Pipelined, &[]);
    }
}
