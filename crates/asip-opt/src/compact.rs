//! Percolation-style compaction: pack each block's ops into wide nodes.
//!
//! Within a block, percolation scheduling's `move_op` transformation
//! hoists each operation as high as its dependences — and the machine's
//! issue resources — allow. We model that as width-constrained list
//! scheduling over the block's dependence DAG: ops are placed at the
//! earliest cycle where their dependences are satisfied and an issue
//! slot is free, prioritized by critical-path height (so recurrence ops
//! issue first and independent fillers pack around them, exactly like a
//! resource-bounded VLIW schedule). The terminator issues in the final
//! node (standard VLIW branch placement), so back-edge chains stay
//! within one node of the loop top.

use crate::depdag::DepDag;
use crate::graph::ScheduledOp;
use crate::work::WorkBlock;

/// Compact one block into node layers (issue cycles) under an issue
/// width limit.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn compact_block(wb: &WorkBlock, width: usize) -> Vec<Vec<ScheduledOp>> {
    assert!(width > 0, "issue width must be positive");
    let n = wb.ops.len();
    if n == 0 {
        return Vec::new();
    }
    let dag = DepDag::new(&wb.ops);
    let term_idx = wb.ops.iter().rposition(|o| o.inst.is_terminator());

    // critical-path height for priority (ops in program order form a
    // topological order, so one reverse sweep suffices)
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        for &(j, lat) in dag.succs(i) {
            height[i] = height[i].max(height[j] + lat);
        }
    }

    let mut pred_count = vec![0usize; n];
    for i in 0..n {
        for &(j, _) in dag.succs(i) {
            pred_count[j] += 1;
        }
    }

    let mut earliest = vec![0u32; n];
    let mut cycle_of: Vec<Option<u32>> = vec![None; n];
    let mut unscheduled: usize = n - usize::from(term_idx.is_some());
    let mut cycle: u32 = 0;

    while unscheduled > 0 {
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| {
                Some(i) != term_idx
                    && cycle_of[i].is_none()
                    && pred_count[i] == 0
                    && earliest[i] <= cycle
            })
            .collect();
        ready.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));
        for &i in ready.iter().take(width) {
            cycle_of[i] = Some(cycle);
            unscheduled -= 1;
            for &(j, lat) in dag.succs(i) {
                pred_count[j] -= 1;
                earliest[j] = earliest[j].max(cycle + lat);
            }
        }
        cycle += 1;
        debug_assert!(
            cycle as usize <= 2 * n + 2,
            "scheduler failed to make progress"
        );
    }

    // the terminator joins the last busy cycle, unless its own
    // dependences (e.g. the branch condition) force a later one
    let last_busy = cycle_of.iter().flatten().copied().max().unwrap_or(0);
    if let Some(t) = term_idx {
        cycle_of[t] = Some(last_busy.max(earliest[t]));
    }

    let max_cycle = cycle_of.iter().flatten().copied().max().unwrap_or(0);
    let mut layers: Vec<Vec<ScheduledOp>> = vec![Vec::new(); (max_cycle + 1) as usize];
    for (i, op) in wb.ops.iter().enumerate() {
        let c = cycle_of[i].expect("all ops scheduled");
        layers[c as usize].push(op.clone());
    }
    layers.retain(|l| !l.is_empty());
    layers
}

/// The sequential (no-optimization) layout: one node per op.
pub fn sequential_block(wb: &WorkBlock) -> Vec<Vec<ScheduledOp>> {
    wb.ops.iter().map(|o| vec![o.clone()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, BlockId, Inst, InstId, InstKind, Operand, Reg};
    use std::collections::HashSet;

    fn sop(id: u32, kind: InstKind) -> ScheduledOp {
        ScheduledOp {
            inst: Inst::new(InstId(id), kind),
            orig: InstId(id),
            weight: 1.0,
        }
    }

    fn add(id: u32, dst: u32, lhs: Operand, rhs: Operand) -> ScheduledOp {
        sop(
            id,
            InstKind::Binary {
                op: BinOp::Add,
                dst: Reg(dst),
                lhs,
                rhs,
            },
        )
    }

    fn block(ops: Vec<ScheduledOp>) -> WorkBlock {
        WorkBlock {
            id: BlockId(0),
            ops,
            succs: vec![],
            preds: vec![],
            exec_weight: 1.0,
            live_out: HashSet::new(),
            live_in: HashSet::new(),
        }
    }

    #[test]
    fn independent_ops_pack_into_one_node() {
        let wb = block(vec![
            add(0, 0, Operand::imm_int(1), Operand::imm_int(2)),
            add(1, 1, Operand::imm_int(3), Operand::imm_int(4)),
            sop(2, InstKind::Ret { value: None }),
        ]);
        let layers = compact_block(&wb, 4);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 3);
        assert!(layers[0].iter().any(|o| o.inst.is_terminator()));
    }

    #[test]
    fn width_limits_parallelism() {
        let ops: Vec<ScheduledOp> = (0..8)
            .map(|k| add(k, k, Operand::imm_int(1), Operand::imm_int(2)))
            .chain([sop(8, InstKind::Ret { value: None })])
            .collect();
        let wide = compact_block(&block(ops.clone()), 8);
        assert_eq!(wide.len(), 1);
        let narrow = compact_block(&block(ops.clone()), 2);
        assert_eq!(narrow.len(), 4, "8 independent ops / width 2");
        assert!(narrow.iter().all(|l| l.len() <= 2 + 1)); // +1 for the terminator joining
        let serial = compact_block(&block(ops), 1);
        assert_eq!(serial.len(), 8);
    }

    #[test]
    fn critical_path_ops_have_priority() {
        // a 3-deep flow chain plus 3 independent fillers at width 2:
        // chain ops must be scheduled each cycle, fillers fit around them
        let mut ops = vec![
            add(0, 10, Operand::imm_int(1), Operand::imm_int(1)),
            add(1, 11, Reg(10).into(), Operand::imm_int(1)),
            add(2, 12, Reg(11).into(), Operand::imm_int(1)),
        ];
        for k in 0..3 {
            ops.push(add(3 + k, 20 + k, Operand::imm_int(5), Operand::imm_int(6)));
        }
        ops.push(sop(6, InstKind::Ret { value: None }));
        let layers = compact_block(&block(ops), 2);
        // 3 cycles minimum (chain); fillers fit in the free slots
        assert_eq!(layers.len(), 3);
        // the chain head issues in cycle 0
        assert!(layers[0].iter().any(|o| o.inst.dst() == Some(Reg(10))));
        assert!(layers[1].iter().any(|o| o.inst.dst() == Some(Reg(11))));
        assert!(layers[2].iter().any(|o| o.inst.dst() == Some(Reg(12))));
    }

    #[test]
    fn flow_chain_spreads_across_nodes() {
        let wb = block(vec![
            add(0, 0, Operand::imm_int(1), Operand::imm_int(2)),
            sop(
                1,
                InstKind::Binary {
                    op: BinOp::Mul,
                    dst: Reg(1),
                    lhs: Reg(0).into(),
                    rhs: Operand::imm_int(3),
                },
            ),
            sop(2, InstKind::Ret { value: None }),
        ]);
        let layers = compact_block(&wb, 4);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 1); // add
        assert_eq!(layers[1].len(), 2); // mul + ret share the last node
    }

    #[test]
    fn branch_waits_for_its_condition() {
        let wb = block(vec![
            add(0, 0, Operand::imm_int(1), Operand::imm_int(2)),
            sop(
                1,
                InstKind::Branch {
                    cond: Reg(0).into(),
                    then_target: BlockId(0),
                    else_target: BlockId(1),
                },
            ),
        ]);
        let layers = compact_block(&wb, 4);
        assert_eq!(layers.len(), 2);
        assert!(layers[1][0].inst.is_terminator());
    }

    #[test]
    fn sequential_layout_is_one_op_per_node() {
        let wb = block(vec![
            add(0, 0, Operand::imm_int(1), Operand::imm_int(2)),
            sop(1, InstKind::Ret { value: None }),
        ]);
        let layers = sequential_block(&wb);
        assert_eq!(layers.len(), 2);
        assert!(layers.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn empty_block_compacts_to_nothing() {
        let wb = block(vec![]);
        assert!(compact_block(&wb, 4).is_empty());
        assert!(sequential_block(&wb).is_empty());
    }
}
