//! Dependence DAG and ASAP levels over a straight-line op region.
//!
//! Percolation-style compaction reduces, inside a block, to: build the
//! dependence DAG, then issue every op at its earliest dependence-legal
//! cycle (ASAP). Anti-dependences allow same-cycle issue (the consumer
//! reads the old value while the new one is written at end of cycle),
//! which is the standard VLIW register-file semantics.

use crate::graph::ScheduledOp;
use asip_ir::{DepKind, Dependence};

/// The dependence DAG of one region.
#[derive(Debug, Clone)]
pub struct DepDag {
    /// `edges[i]` = list of `(j, latency)` with `j > i` depending on `i`.
    edges: Vec<Vec<(usize, u32)>>,
    n: usize,
}

impl DepDag {
    /// Build the DAG for `ops` (program order).
    pub fn new(ops: &[ScheduledOp]) -> Self {
        let n = ops.len();
        let mut edges = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let kinds = Dependence::between(&ops[i].inst, &ops[j].inst);
                if kinds.is_empty() {
                    continue;
                }
                let latency = kinds
                    .iter()
                    .map(|k| match k {
                        DepKind::Flow | DepKind::Output | DepKind::Memory => 1,
                        // anti: consumer reads the old value, same-cycle ok;
                        // control: a branch may issue alongside independent
                        // ops (its condition still arrives via a flow dep)
                        DepKind::Anti | DepKind::Control => 0,
                    })
                    .max()
                    .expect("non-empty");
                edges[i].push((j, latency));
            }
        }
        DepDag { edges, n }
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dependence edges out of op `i` as `(successor, latency)`.
    pub fn succs(&self, i: usize) -> &[(usize, u32)] {
        &self.edges[i]
    }

    /// ASAP issue cycle per op: every op issues at the earliest cycle
    /// permitted by its incoming dependence latencies.
    pub fn asap_levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.n];
        for i in 0..self.n {
            for &(j, lat) in &self.edges[i] {
                level[j] = level[j].max(level[i] + lat);
            }
        }
        level
    }

    /// The critical-path length in cycles (max level + 1), 0 if empty.
    pub fn critical_path(&self) -> u32 {
        if self.n == 0 {
            0
        } else {
            self.asap_levels().into_iter().max().unwrap_or(0) + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, Inst, InstId, InstKind, Operand, Reg};

    fn op(id: u32, dst: u32, lhs: Operand, rhs: Operand) -> ScheduledOp {
        ScheduledOp {
            inst: Inst::new(
                InstId(id),
                InstKind::Binary {
                    op: BinOp::Add,
                    dst: Reg(dst),
                    lhs,
                    rhs,
                },
            ),
            orig: InstId(id),
            weight: 1.0,
        }
    }

    #[test]
    fn independent_ops_share_level_zero() {
        let ops = vec![
            op(0, 0, Operand::imm_int(1), Operand::imm_int(2)),
            op(1, 1, Operand::imm_int(3), Operand::imm_int(4)),
            op(2, 2, Operand::imm_int(5), Operand::imm_int(6)),
        ];
        let dag = DepDag::new(&ops);
        assert_eq!(dag.asap_levels(), vec![0, 0, 0]);
        assert_eq!(dag.critical_path(), 1);
    }

    #[test]
    fn flow_chain_serializes() {
        let ops = vec![
            op(0, 1, Operand::imm_int(1), Operand::imm_int(2)),
            op(1, 2, Reg(1).into(), Operand::imm_int(1)),
            op(2, 3, Reg(2).into(), Operand::imm_int(1)),
        ];
        let dag = DepDag::new(&ops);
        assert_eq!(dag.asap_levels(), vec![0, 1, 2]);
        assert_eq!(dag.critical_path(), 3);
    }

    #[test]
    fn anti_dependence_allows_same_cycle() {
        // op0 reads r5; op1 writes r5 — may issue together
        let ops = vec![
            op(0, 1, Reg(5).into(), Operand::imm_int(1)),
            op(1, 5, Operand::imm_int(2), Operand::imm_int(3)),
        ];
        let dag = DepDag::new(&ops);
        assert_eq!(dag.asap_levels(), vec![0, 0]);
    }

    #[test]
    fn output_dependence_serializes() {
        let ops = vec![
            op(0, 7, Operand::imm_int(1), Operand::imm_int(2)),
            op(1, 7, Operand::imm_int(3), Operand::imm_int(4)),
        ];
        let dag = DepDag::new(&ops);
        assert_eq!(dag.asap_levels(), vec![0, 1]);
    }

    #[test]
    fn recurrence_levels_grow_linearly() {
        // i = i + 1, four times: flow chain through r0
        let ops: Vec<ScheduledOp> = (0..4)
            .map(|k| op(k, 0, Reg(0).into(), Operand::imm_int(1)))
            .collect();
        let dag = DepDag::new(&ops);
        assert_eq!(dag.asap_levels(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn memory_dependence_orders_store_load() {
        let st = ScheduledOp {
            inst: Inst::new(
                InstId(0),
                InstKind::Store {
                    array: asip_ir::ArrayId(0),
                    index: Reg(0).into(),
                    value: Reg(1).into(),
                },
            ),
            orig: InstId(0),
            weight: 1.0,
        };
        let ld = ScheduledOp {
            inst: Inst::new(
                InstId(1),
                InstKind::Load {
                    dst: Reg(2),
                    array: asip_ir::ArrayId(0),
                    index: Reg(3).into(),
                },
            ),
            orig: InstId(1),
            weight: 1.0,
        };
        let dag = DepDag::new(&[st, ld]);
        assert_eq!(dag.asap_levels(), vec![0, 1]);
    }
}
