//! # asip-opt
//!
//! The optimizing-compiler substrate of the paper's Figure 2 (step 3):
//! a reconstruction of the UCI VLIW compiler's analysis-relevant behavior
//! over [`asip_ir`] programs.
//!
//! The output of optimization is a [`ScheduleGraph`] — a CFG whose nodes
//! are *wide instructions* (sets of operations issued in the same cycle),
//! exactly the "optimized program graph" the paper's sequence detection
//! analyzer consumes. Three optimization levels mirror the paper:
//!
//! | Level | Paper name | Passes |
//! |---|---|---|
//! | [`OptLevel::None`] | "No Optimization" | sequential 3-address order, one op per node |
//! | [`OptLevel::Pipelined`] | "Pipelined" | loop pipelining (unroll-and-compact kernel formation) + percolation-style compaction and block merging |
//! | [`OptLevel::PipelinedRenamed`] | "Pipelined + Renamed" | level 1 plus register renaming (fresh destination per def, boundary copies for live-out values) |
//!
//! ## Why renaming can *hurt* sequence detection
//!
//! Without renaming, anti- and output-dependences act as motion fences
//! during compaction, which keeps a producer scheduled near its consumer.
//! Renaming dissolves those fences: producers float to their earliest
//! data-ready cycle while consumers pinned by recurrences stay late, and
//! values that cross block boundaries now flow through freshly-inserted
//! copies ("communicating only through the renamed register", as the
//! paper puts it). Both effects pull flow-dependent pairs outside the
//! chaining window — reproducing the paper's level-2 drop.
//!
//! ## Example
//!
//! ```
//! use asip_opt::{OptLevel, Optimizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asip_frontend::compile("t", r#"
//!     input int x[16]; output int y[16];
//!     void main() {
//!         int i;
//!         for (i = 0; i < 16; i = i + 1) { y[i] = x[i] * 3 + 1; }
//!     }
//! "#)?;
//! let mut data = asip_sim::DataSet::new();
//! data.bind_ints("x", (0..16).collect());
//! let exec = asip_sim::Simulator::new(&program).run(&data)?;
//!
//! let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &exec.profile);
//! assert!(graph.node_count() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod depdag;
pub mod graph;
pub mod hoist;
pub mod ifconv;
pub mod ilp;
pub mod optimizer;
pub mod pipeline;
pub mod rename;
pub mod work;

pub use graph::{NodeId, SchedNode, ScheduleGraph, ScheduledOp};
pub use ilp::{characterize, IlpPoint, IlpReport};
pub use optimizer::{OptConfig, OptLevel, Optimizer};
