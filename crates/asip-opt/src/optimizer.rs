//! The optimization driver: levels 0/1/2 of the paper.

use crate::compact::{compact_block, sequential_block};
use crate::graph::ScheduleGraph;
use crate::hoist::hoist_upward;
use crate::ifconv::if_convert;
use crate::pipeline::pipeline_loops;
use crate::rename::rename_registers;
use crate::work::Work;
use asip_ir::Program;
use asip_sim::Profile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three optimization levels of the paper's experiments (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OptLevel {
    /// Level 0: no optimization — sequential 3-address order.
    None,
    /// Level 1: loop pipelining + percolation scheduling, no renaming.
    Pipelined,
    /// Level 2: level 1 plus register renaming.
    PipelinedRenamed,
}

impl OptLevel {
    /// All levels, in paper order.
    pub fn all() -> [OptLevel; 3] {
        [
            OptLevel::None,
            OptLevel::Pipelined,
            OptLevel::PipelinedRenamed,
        ]
    }

    /// The paper's series label for this level.
    pub fn paper_label(self) -> &'static str {
        match self {
            OptLevel::None => "No Optimization",
            OptLevel::Pipelined => "Pipelined",
            OptLevel::PipelinedRenamed => "Pipelined + Renamed",
        }
    }

    /// Numeric level (0, 1, 2) as used in the paper's Table 2 header.
    pub fn number(self) -> u8 {
        match self {
            OptLevel::None => 0,
            OptLevel::Pipelined => 1,
            OptLevel::PipelinedRenamed => 2,
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_label())
    }
}

/// Tunable knobs for the optimizer (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptConfig {
    /// Kernel unroll factor for loop pipelining (≥ 2 to pipeline).
    pub unroll: usize,
    /// Whether to merge unconditional jump chains before compaction
    /// (percolation's trivial-node deletion).
    pub merge_blocks: bool,
    /// Issue width of the target VLIW (operations per node). The UCI
    /// compiler scheduled for a finite machine; width 4 is a typical
    /// mid-90s VLIW datapath.
    pub width: usize,
    /// Sweeps of cross-block upward code motion (percolation's
    /// `move_op` through block boundaries; 0 disables).
    pub hoist_passes: usize,
    /// Maximum arm size for if-conversion (percolation's `move_test`
    /// effect; 0 disables). Short pure branch arms fold into their
    /// parent region with profile-weighted ops.
    pub if_convert_max_ops: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            unroll: 2,
            merge_blocks: true,
            width: 4,
            hoist_passes: 2,
            if_convert_max_ops: 6,
        }
    }
}

/// Drives the selected optimization level over a profiled program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimizer {
    level: OptLevel,
    config: OptConfig,
}

impl Optimizer {
    /// An optimizer at the given level with default configuration.
    pub fn new(level: OptLevel) -> Self {
        Optimizer {
            level,
            config: OptConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: OptConfig) -> Self {
        self.config = config;
        self
    }

    /// The configured level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Optimize `program` (with its measured `profile`) into a scheduled
    /// program graph.
    pub fn run(&self, program: &Program, profile: &Profile) -> ScheduleGraph {
        match self.level {
            OptLevel::None => ScheduleGraph::sequential(program, profile),
            OptLevel::Pipelined | OptLevel::PipelinedRenamed => {
                let mut work = Work::new(program, profile);
                if self.config.merge_blocks {
                    work.merge_jump_chains();
                }
                if self.config.if_convert_max_ops > 0 {
                    if_convert(&mut work, self.config.if_convert_max_ops);
                    if self.config.merge_blocks {
                        // folding a conditional often leaves jump chains
                        work.merge_jump_chains();
                    }
                }
                // Renaming runs BEFORE pipelining, as in the paper's
                // compiler: the renamed loop body carries its values to
                // the next iteration through the boundary copies, so the
                // overlapped iterations of the kernel communicate "only
                // through the renamed register" — which is exactly why
                // the paper observes renaming destroying cross-iteration
                // sequences.
                if self.level == OptLevel::PipelinedRenamed {
                    rename_registers(&mut work);
                }
                hoist_upward(&mut work, self.config.hoist_passes);
                pipeline_loops(&mut work, self.config.unroll);
                let width = self.config.width;
                let mut graph = work.into_graph(|wb| compact_block(wb, width));
                graph.region_chaining = true;
                debug_assert!(graph.check_invariants().is_ok());
                graph
            }
        }
    }

    /// The level-0 graph regardless of configured level (convenience for
    /// before/after comparisons).
    pub fn sequential(program: &Program, profile: &Profile) -> ScheduleGraph {
        ScheduleGraph::sequential(program, profile)
    }
}

/// Layout helper: the sequential layout as a standalone function (used by
/// tests and the ablation benches).
pub fn sequential_layout(work: Work) -> ScheduleGraph {
    work.into_graph(sequential_block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_sim::{DataSet, Simulator};

    fn fir_like() -> (Program, Profile) {
        let program = asip_frontend::compile(
            "fir8",
            r#"
            input float x[16];
            input float c[4];
            output float y[16];
            void main() {
                int i; int j; float acc;
                for (i = 0; i < 16; i = i + 1) {
                    acc = 0.0;
                    for (j = 0; j < 4; j = j + 1) {
                        acc = acc + c[j] * x[(i - j + 16) % 16];
                    }
                    y[i] = acc;
                }
            }
            "#,
        )
        .expect("compiles");
        let mut data = DataSet::new();
        data.bind_floats("x", (0..16).map(|k| k as f64 * 0.1).collect());
        data.bind_floats("c", vec![0.25, 0.5, 0.75, 1.0]);
        let profile = Simulator::new(&program).run(&data).expect("runs").profile;
        (program, profile)
    }

    #[test]
    fn level0_is_sequential() {
        let (p, profile) = fir_like();
        let g = Optimizer::new(OptLevel::None).run(&p, &profile);
        assert_eq!(g.max_width(), 1);
        assert_eq!(g.node_count(), p.inst_count());
        g.check_invariants().expect("invariants");
    }

    #[test]
    fn level1_compacts_and_pipelines() {
        let (p, profile) = fir_like();
        let g0 = Optimizer::new(OptLevel::None).run(&p, &profile);
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        g1.check_invariants().expect("invariants");
        assert!(g1.max_width() > 1, "compaction packs independent ops");
        assert!(
            g1.node_count() < g0.node_count(),
            "wide nodes mean fewer nodes"
        );
        // weight conservation for chainable ops (branch copies are
        // dropped by kernel formation, so compare chainable only)
        let w0 = g0.chainable_weight();
        let w1 = g1.chainable_weight();
        assert!(
            (w0 - w1).abs() / w0 < 1e-9,
            "chainable dynamic work is conserved: {w0} vs {w1}"
        );
    }

    #[test]
    fn level2_adds_registers_and_movs() {
        let (p, profile) = fir_like();
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        let g2 = Optimizer::new(OptLevel::PipelinedRenamed).run(&p, &profile);
        g2.check_invariants().expect("invariants");
        let movs = |g: &ScheduleGraph| {
            g.ops()
                .filter(|(_, o)| {
                    matches!(
                        o.inst.kind,
                        asip_ir::InstKind::Unary {
                            op: asip_ir::UnOp::Mov,
                            ..
                        }
                    )
                })
                .count()
        };
        assert!(movs(&g2) > movs(&g1), "renaming inserts boundary copies");
    }

    #[test]
    fn level2_schedules_at_least_as_wide() {
        let (p, profile) = fir_like();
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        let g2 = Optimizer::new(OptLevel::PipelinedRenamed).run(&p, &profile);
        assert!(g2.max_width() >= g1.max_width());
    }

    #[test]
    fn pipelining_shortens_weighted_schedule() {
        let (p, profile) = fir_like();
        let g0 = Optimizer::new(OptLevel::None).run(&p, &profile);
        let g1 = Optimizer::new(OptLevel::Pipelined).run(&p, &profile);
        assert!(
            g1.weighted_cycles() < g0.weighted_cycles(),
            "optimization must shorten the dynamic schedule"
        );
    }

    #[test]
    fn unroll_config_controls_kernel_size() {
        let (p, profile) = fir_like();
        let g2 = Optimizer::new(OptLevel::Pipelined)
            .with_config(OptConfig {
                unroll: 2,
                ..OptConfig::default()
            })
            .run(&p, &profile);
        let g4 = Optimizer::new(OptLevel::Pipelined)
            .with_config(OptConfig {
                unroll: 4,
                ..OptConfig::default()
            })
            .run(&p, &profile);
        let ops2: usize = g2.nodes.iter().map(|n| n.ops.len()).sum();
        let ops4: usize = g4.nodes.iter().map(|n| n.ops.len()).sum();
        assert!(ops4 > ops2, "larger kernels hold more op copies");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(OptLevel::None.paper_label(), "No Optimization");
        assert_eq!(OptLevel::Pipelined.paper_label(), "Pipelined");
        assert_eq!(
            OptLevel::PipelinedRenamed.paper_label(),
            "Pipelined + Renamed"
        );
        assert_eq!(OptLevel::None.number(), 0);
        assert_eq!(OptLevel::Pipelined.number(), 1);
        assert_eq!(OptLevel::PipelinedRenamed.number(), 2);
    }
}
