//! The optimizer's working representation: per-block op lists with CFG
//! edges and profile-derived weights, mutable by the passes.

use crate::graph::{NodeId, SchedNode, ScheduleGraph, ScheduledOp};
use asip_ir::{BlockId, Cfg, Liveness, Program, Reg, Ty};
use asip_sim::Profile;
use std::collections::HashSet;

/// A block under transformation.
#[derive(Debug, Clone)]
pub struct WorkBlock {
    /// Source block id.
    pub id: BlockId,
    /// Ops in order; the terminator is last. May be empty after merging.
    pub ops: Vec<ScheduledOp>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
    /// Dynamic entries into this block (post-transformation estimate).
    pub exec_weight: f64,
    /// Registers live on exit (from the original program's liveness;
    /// maintained across merges).
    pub live_out: HashSet<Reg>,
    /// Registers live on entry (used by the hoist pass to prove a
    /// speculated definition dead on sibling paths).
    pub live_in: HashSet<Reg>,
}

/// The whole function under transformation.
#[derive(Debug, Clone)]
pub struct Work {
    /// Program name.
    pub name: String,
    /// Blocks, indexed by original [`BlockId`]. Merged-away blocks have
    /// empty `ops`.
    pub blocks: Vec<WorkBlock>,
    /// Entry block.
    pub entry: BlockId,
    /// Register types; grows when renaming allocates fresh registers.
    pub reg_types: Vec<Ty>,
    /// `true` per array with float elements.
    pub arrays_float: Vec<bool>,
    /// Total dynamic ops of the profiled run (the frequency denominator).
    pub total_profile_ops: u64,
}

impl Work {
    /// Build the working representation from a program and its profile.
    pub fn new(program: &Program, profile: &Profile) -> Self {
        let cfg = Cfg::new(program);
        let liveness = Liveness::new(program, &cfg);
        let blocks = program
            .blocks()
            .iter()
            .map(|b| WorkBlock {
                id: b.id,
                ops: b
                    .insts
                    .iter()
                    .map(|inst| ScheduledOp {
                        inst: inst.clone(),
                        orig: inst.id,
                        weight: profile.count(inst.id) as f64,
                    })
                    .collect(),
                succs: cfg.succs(b.id).to_vec(),
                preds: cfg.preds(b.id).to_vec(),
                exec_weight: profile.block_count(b.id) as f64,
                live_out: liveness.live_out(b.id).clone(),
                live_in: liveness.live_in(b.id).clone(),
            })
            .collect();
        Work {
            name: program.name.clone(),
            blocks,
            entry: program.entry,
            reg_types: program.reg_types.clone(),
            arrays_float: program.arrays.iter().map(|a| a.ty == Ty::Float).collect(),
            total_profile_ops: profile.total_ops(),
        }
    }

    /// Allocate a fresh register (used by renaming).
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        let r = Reg(self.reg_types.len() as u32);
        self.reg_types.push(ty);
        r
    }

    /// Merge single-pred/single-succ jump chains: when block `b` has
    /// exactly one predecessor `p`, `p`'s only successor is `b`, and `p`
    /// ends in an unconditional jump, `b`'s ops are appended to `p`
    /// (dropping the jump). This is the percolation-scheduling "delete
    /// empty/trivial node" transformation at block granularity; it lets
    /// compaction see across what used to be a control-flow seam.
    /// Returns the number of merges performed.
    pub fn merge_jump_chains(&mut self) -> usize {
        let mut merges = 0;
        loop {
            let Some((p, b)) = self.find_mergeable() else {
                return merges;
            };
            // drop p's terminator (the jump)
            let mut tail = std::mem::take(&mut self.blocks[b.index()].ops);
            let pb = &mut self.blocks[p.index()];
            let term = pb.ops.pop();
            debug_assert!(matches!(
                term.as_ref().map(|t| t.inst.is_terminator()),
                Some(true)
            ));
            pb.ops.append(&mut tail);
            let b_succs = std::mem::take(&mut self.blocks[b.index()].succs);
            let b_live_out = std::mem::take(&mut self.blocks[b.index()].live_out);
            self.blocks[b.index()].preds.clear();
            self.blocks[p.index()].succs = b_succs.clone();
            self.blocks[p.index()].live_out = b_live_out;
            for s in b_succs {
                for pred in &mut self.blocks[s.index()].preds {
                    if *pred == b {
                        *pred = p;
                    }
                }
            }
            merges += 1;
        }
    }

    fn find_mergeable(&self) -> Option<(BlockId, BlockId)> {
        for b in &self.blocks {
            if b.ops.is_empty() || b.id == self.entry {
                continue;
            }
            if b.preds.len() != 1 {
                continue;
            }
            let p = b.preds[0];
            if p == b.id {
                continue; // self-loop
            }
            let pb = &self.blocks[p.index()];
            if pb.ops.is_empty() || pb.succs.len() != 1 {
                continue;
            }
            let is_jump = pb
                .ops
                .last()
                .map(|t| matches!(t.inst.kind, asip_ir::InstKind::Jump { .. }))
                .unwrap_or(false);
            if is_jump {
                return Some((p, b.id));
            }
        }
        None
    }

    /// Assemble the final [`ScheduleGraph`] from per-block node layouts.
    ///
    /// `layout(block)` must return the ops of each node of that block, in
    /// issue order. Empty (merged-away) blocks are skipped.
    pub fn into_graph(
        self,
        mut layout: impl FnMut(&WorkBlock) -> Vec<Vec<ScheduledOp>>,
    ) -> ScheduleGraph {
        let mut nodes: Vec<SchedNode> = Vec::new();
        let mut block_first: Vec<Option<NodeId>> = vec![None; self.blocks.len()];
        let mut block_last: Vec<Option<NodeId>> = vec![None; self.blocks.len()];

        for wb in &self.blocks {
            if wb.ops.is_empty() {
                continue;
            }
            let node_layers = layout(wb);
            let mut prev: Option<NodeId> = None;
            for ops in node_layers {
                if ops.is_empty() {
                    continue;
                }
                let id = NodeId(nodes.len() as u32);
                nodes.push(SchedNode {
                    ops,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    block: wb.id,
                });
                if let Some(p) = prev {
                    nodes[p.index()].succs.push(id);
                    nodes[id.index()].preds.push(p);
                }
                if block_first[wb.id.index()].is_none() {
                    block_first[wb.id.index()] = Some(id);
                }
                block_last[wb.id.index()] = Some(id);
                prev = Some(id);
            }
        }
        for wb in &self.blocks {
            let Some(last) = block_last[wb.id.index()] else {
                continue;
            };
            for &s in &wb.succs {
                if let Some(first) = block_first[s.index()] {
                    nodes[last.index()].succs.push(first);
                    nodes[first.index()].preds.push(last);
                }
            }
        }
        let entry = block_first[self.entry.index()].unwrap_or(NodeId(0));
        ScheduleGraph {
            name: self.name,
            nodes,
            entry,
            arrays_float: self.arrays_float,
            total_profile_ops: self.total_profile_ops,
            region_chaining: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, Operand, ProgramBuilder};
    use asip_sim::{DataSet, Simulator};

    fn jump_chain_program() -> Program {
        // entry -jmp-> mid -jmp-> tail(ret)
        let mut b = ProgramBuilder::new("chain");
        let entry = b.entry_block();
        let mid = b.new_block();
        let tail = b.new_block();
        b.select_block(entry);
        let t = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        b.jump(mid);
        b.select_block(mid);
        let u = b.binary(BinOp::Mul, t.into(), Operand::imm_int(3));
        b.jump(tail);
        b.select_block(tail);
        b.ret(Some(u.into()));
        b.finish().expect("valid")
    }

    #[test]
    fn builds_from_program_with_weights() {
        let p = jump_chain_program();
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let w = Work::new(&p, &profile);
        assert_eq!(w.blocks.len(), 3);
        assert_eq!(w.blocks[0].ops.len(), 2);
        assert_eq!(w.blocks[0].exec_weight, 1.0);
        assert_eq!(w.total_profile_ops, profile.total_ops());
    }

    #[test]
    fn merges_jump_chains() {
        let p = jump_chain_program();
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let mut w = Work::new(&p, &profile);
        let merges = w.merge_jump_chains();
        assert_eq!(merges, 2);
        // everything lives in the entry block now
        assert_eq!(w.blocks[0].ops.len(), 3, "add, mul, ret");
        assert!(w.blocks[1].ops.is_empty());
        assert!(w.blocks[2].ops.is_empty());
        assert!(w.blocks[0].succs.is_empty());
    }

    #[test]
    fn merge_skips_loops_and_joins() {
        // single-block self loop must not merge with itself
        let mut b = ProgramBuilder::new("loop");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(asip_ir::Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.jump(body);
        b.select_block(body);
        b.binary_to(i, BinOp::Add, i.into(), Operand::imm_int(1));
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(3));
        b.branch(c.into(), body, exit);
        b.select_block(exit);
        b.ret(None);
        let p = b.finish().expect("valid");
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let mut w = Work::new(&p, &profile);
        let merges = w.merge_jump_chains();
        // entry -> body is mergeable? body has 2 preds (entry + itself): no.
        assert_eq!(merges, 0);
    }

    #[test]
    fn into_graph_wires_cross_block_edges() {
        let p = jump_chain_program();
        let profile = Simulator::new(&p)
            .run(&DataSet::new())
            .expect("runs")
            .profile;
        let w = Work::new(&p, &profile);
        // trivial layout: one node per op
        let g = w.into_graph(|wb| wb.ops.iter().map(|o| vec![o.clone()]).collect());
        g.check_invariants().expect("invariants");
        assert_eq!(g.node_count(), 5);
    }
}
