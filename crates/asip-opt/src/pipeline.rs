//! Loop pipelining by kernel formation (unroll-and-compact).
//!
//! The UCI compiler's loop pipelining (Potasman's percolation-based
//! perfect pipelining) overlaps successive iterations of an innermost
//! loop until a repeating kernel emerges. For sequence analysis the
//! essential artifact is that kernel: a region in which operations from
//! iteration *i* and iteration *i+1* coexist, so loop-carried data flow
//! (an `add` whose result feeds next iteration's `multiply`) becomes
//! *visible adjacency* in the scheduled graph — the effect the paper
//! highlights in Section 6.
//!
//! We form the kernel by unrolling the single-block loop body `U` times
//! into one straight-line region (register reuse carries the true
//! cross-iteration data flow) and letting the compactor schedule it.
//! Interior copies of the exit test are dropped — the pipelined loop
//! tests once per kernel, exactly like an unrolled/pipelined loop on real
//! hardware. Each retained op copy receives `1/U` of the original
//! dynamic count, so summed weights still reproduce the measured profile.

use crate::graph::ScheduledOp;
use crate::work::Work;
use asip_ir::{BlockId, InstKind};
use std::collections::HashSet;

/// Which loops were pipelined, for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Body blocks that were kernel-formed.
    pub pipelined_blocks: Vec<BlockId>,
}

/// Pipeline every eligible innermost loop in `work`.
///
/// Eligible loops are single-block natural loops (the bottom-test shape
/// the front end emits): a block that branches back to itself. Loops
/// whose body contains another loop are left alone (only innermost loops
/// pipeline, as in the paper's compiler).
pub fn pipeline_loops(work: &mut Work, unroll: usize) -> PipelineReport {
    let mut report = PipelineReport::default();
    if unroll < 2 {
        return report;
    }
    let self_looping: Vec<BlockId> = work
        .blocks
        .iter()
        .filter(|b| !b.ops.is_empty() && b.succs.contains(&b.id))
        .map(|b| b.id)
        .collect();

    for id in self_looping {
        if kernel_form(work, id, unroll) {
            report.pipelined_blocks.push(id);
        }
    }
    report
}

/// Unroll the body of single-block loop `id` in place. Returns false if
/// the block doesn't have the expected shape.
fn kernel_form(work: &mut Work, id: BlockId, unroll: usize) -> bool {
    let block = &work.blocks[id.index()];
    let n = block.ops.len();
    if n < 2 {
        return false;
    }
    // terminator must be the self-branch
    let Some(term) = block.ops.last() else {
        return false;
    };
    let InstKind::Branch { .. } = term.inst.kind else {
        return false;
    };
    if !term.inst.targets().contains(&id) {
        return false;
    }

    // ops that feed (transitively, within the body) the exit test are the
    // loop-control slice; the final test needs the *last* copy of them,
    // which register reuse provides automatically, so all copies stay.
    let body: Vec<ScheduledOp> = block.ops[..n - 1].to_vec();
    let term = block.ops[n - 1].clone();
    let u = unroll as f64;

    let mut kernel: Vec<ScheduledOp> = Vec::with_capacity(body.len() * unroll + 1);
    for _iteration in 0..unroll {
        for op in &body {
            let mut copy = op.clone();
            copy.weight = op.weight / u;
            kernel.push(copy);
        }
    }
    let mut final_term = term;
    final_term.weight /= u;
    kernel.push(final_term);

    let wb = &mut work.blocks[id.index()];
    wb.ops = kernel;
    wb.exec_weight /= u;
    true
}

/// Registers written by an op set (helper for tests and the compactor).
pub fn defs_of(ops: &[ScheduledOp]) -> HashSet<asip_ir::Reg> {
    ops.iter().filter_map(|o| o.inst.dst()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_ir::{BinOp, Operand, Program, ProgramBuilder, Ty};
    use asip_sim::{DataSet, Simulator};

    fn mac_loop() -> (Program, asip_sim::Profile) {
        // acc += x[i] * k; i++ — single-block bottom-test loop
        let mut b = ProgramBuilder::new("mac");
        let x = b.input_array("x", Ty::Int, 8);
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        let g = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(8));
        b.branch(g.into(), body, exit);
        b.select_block(body);
        let v = b.load(x, i.into());
        let t = b.binary(BinOp::Mul, v.into(), Operand::imm_int(3));
        b.binary_to(acc, BinOp::Add, acc.into(), t.into());
        b.binary_to(i, BinOp::Add, i.into(), Operand::imm_int(1));
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(8));
        b.branch(c.into(), body, exit);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        let p = b.finish().expect("valid");
        let mut d = DataSet::new();
        d.bind_ints("x", (0..8).collect());
        let profile = Simulator::new(&p).run(&d).expect("runs").profile;
        (p, profile)
    }

    #[test]
    fn kernel_doubles_body_and_halves_weights() {
        let (p, profile) = mac_loop();
        let mut w = Work::new(&p, &profile);
        let body_id = BlockId(1);
        let orig_ops = w.blocks[body_id.index()].ops.len(); // 5 body + 1 branch
        let orig_weight: f64 = w.blocks[body_id.index()]
            .ops
            .iter()
            .filter(|o| !o.inst.is_terminator())
            .map(|o| o.weight)
            .sum();

        let report = pipeline_loops(&mut w, 2);
        assert_eq!(report.pipelined_blocks, vec![body_id]);

        let wb = &w.blocks[body_id.index()];
        assert_eq!(wb.ops.len(), (orig_ops - 1) * 2 + 1);
        let new_weight: f64 = wb
            .ops
            .iter()
            .filter(|o| !o.inst.is_terminator())
            .map(|o| o.weight)
            .sum();
        assert!((new_weight - orig_weight).abs() < 1e-9, "weights conserved");
        // exactly one terminator, at the end
        assert!(wb.ops.last().expect("nonempty").inst.is_terminator());
        assert_eq!(wb.ops.iter().filter(|o| o.inst.is_terminator()).count(), 1);
    }

    #[test]
    fn cross_iteration_flow_is_present_in_kernel() {
        let (p, profile) = mac_loop();
        let mut w = Work::new(&p, &profile);
        pipeline_loops(&mut w, 2);
        let wb = &w.blocks[1];
        // find the first copy of `i = i + 1` and the second copy of the
        // load using i: they form an add -> load flow pair
        let i_updates: Vec<usize> = wb
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                matches!(&o.inst.kind, InstKind::Binary { op: BinOp::Add, dst, .. }
                    if o.inst.uses().contains(dst))
            })
            .map(|(k, _)| k)
            .collect();
        assert!(i_updates.len() >= 2, "both iteration updates present");
        let loads: Vec<usize> = wb
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.inst.kind, InstKind::Load { .. }))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(loads.len(), 2);
        // second load comes after first i-update: its index register
        // carries the incremented value (cross-iteration flow)
        assert!(loads[1] > i_updates[0]);
    }

    #[test]
    fn non_self_loop_blocks_untouched() {
        let (p, profile) = mac_loop();
        let mut w = Work::new(&p, &profile);
        let entry_before = w.blocks[0].ops.clone();
        pipeline_loops(&mut w, 2);
        assert_eq!(w.blocks[0].ops, entry_before);
        assert_eq!(w.blocks[2].ops.len(), 1);
    }

    #[test]
    fn unroll_factor_one_is_identity() {
        let (p, profile) = mac_loop();
        let mut w = Work::new(&p, &profile);
        let before = w.blocks[1].ops.clone();
        let report = pipeline_loops(&mut w, 1);
        assert!(report.pipelined_blocks.is_empty());
        assert_eq!(w.blocks[1].ops, before);
    }

    #[test]
    fn higher_unroll_factors() {
        let (p, profile) = mac_loop();
        let mut w = Work::new(&p, &profile);
        pipeline_loops(&mut w, 4);
        let wb = &w.blocks[1];
        assert_eq!(wb.ops.len(), 5 * 4 + 1);
        // weights quartered
        let load_w: Vec<f64> = wb
            .ops
            .iter()
            .filter(|o| matches!(o.inst.kind, InstKind::Load { .. }))
            .map(|o| o.weight)
            .collect();
        assert_eq!(load_w.len(), 4);
        assert!((load_w[0] - 2.0).abs() < 1e-9, "8 iterations / 4 = 2");
    }
}
