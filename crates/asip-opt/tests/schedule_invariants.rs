//! Scheduler invariants over the real benchmark suite: per-instruction
//! profile attribution survives every transformation.

use asip_opt::{OptConfig, OptLevel, Optimizer};
use std::collections::HashMap;

const SAMPLE: &[&str] = &["fir", "sewha", "edge", "bspline", "feowf", "flatten"];

/// Every non-control original instruction's profile count must equal the
/// summed weights of its scheduled copies — percolation may duplicate
/// and pipelining may split, but attribution is conserved op by op.
#[test]
fn per_instruction_weight_attribution_is_conserved() {
    for name in SAMPLE {
        let reg = asip_benchmarks::registry();
        let b = reg.find(name).expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("simulates");
        for level in [OptLevel::Pipelined, OptLevel::PipelinedRenamed] {
            let graph = Optimizer::new(level).run(&program, &profile);
            let mut by_orig: HashMap<u32, f64> = HashMap::new();
            for (_, op) in graph.ops() {
                // synthetic ops (renaming movs) carry a sentinel orig id
                if op.orig.0 != u32::MAX {
                    *by_orig.entry(op.orig.0).or_insert(0.0) += op.weight;
                }
            }
            for (_, inst) in program.insts() {
                if inst.is_terminator() {
                    continue; // kernel formation drops interior branch copies
                }
                let expected = profile.count(inst.id) as f64;
                let got = by_orig.get(&inst.id.0).copied().unwrap_or(0.0);
                assert!(
                    (expected - got).abs() < 1e-6 * expected.max(1.0),
                    "{name}@{level}: {} attribution {got} != profile {expected}",
                    inst.id
                );
            }
        }
    }
}

/// Wider machines never lengthen the weighted schedule, and unroll-2
/// kernels never run more weighted cycles than unroll-1 bodies.
#[test]
fn schedules_improve_monotonically_with_resources() {
    for name in SAMPLE {
        let reg = asip_benchmarks::registry();
        let b = reg.find(name).expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("simulates");
        let cycles_at = |width: usize| {
            Optimizer::new(OptLevel::Pipelined)
                .with_config(OptConfig {
                    width,
                    ..OptConfig::default()
                })
                .run(&program, &profile)
                .weighted_cycles()
        };
        let mut prev = f64::INFINITY;
        for width in [1, 2, 4, 8] {
            let c = cycles_at(width);
            assert!(
                c <= prev * (1.0 + 1e-9),
                "{name}: width {width} runs {c} cycles, worse than {prev}"
            );
            prev = c;
        }
    }
}

/// Every scheduled graph stays structurally sound under every config the
/// harness exercises.
#[test]
fn graphs_are_structurally_sound_under_config_sweeps() {
    let reg = asip_benchmarks::registry();
    let b = reg.find("sewha").expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    for unroll in [1, 2, 4] {
        for width in [1, 4] {
            for hoist_passes in [0, 2] {
                for merge_blocks in [false, true] {
                    for level in OptLevel::all() {
                        let g = Optimizer::new(level)
                            .with_config(OptConfig {
                                unroll,
                                width,
                                hoist_passes,
                                merge_blocks,
                                ..OptConfig::default()
                            })
                            .run(&program, &profile);
                        g.check_invariants().unwrap_or_else(|e| {
                            panic!(
                                "unroll={unroll} width={width} hoist={hoist_passes} \
                                 merge={merge_blocks} level={level}: {e}"
                            )
                        });
                    }
                }
            }
        }
    }
}
