//! Incremental pareto-frontier search over the extension design space.
//!
//! The greedy selector in [`select`](crate::select) answers one
//! question — "which extensions for *this* budget?" — and a config
//! sweep re-answers it from scratch per grid point. This module
//! restructures selection as one *search* whose output answers every
//! grid point at once:
//!
//! - **Candidate expansion** is a best-first branch-and-bound over
//!   partial extension sets: a max-heap ordered by an admissible
//!   benefit bound (current benefit plus the minimum of a fractional
//!   area-knapsack completion and an opcode-slot completion) expands
//!   the most promising partial set first.
//! - **Pareto-front pruning**: every expanded node is a feasible
//!   extension set; the search keeps only the non-dominated points of
//!   the (area used, opcode slots used, benefit) space, and a popped
//!   node whose *bound* is already dominated by a frontier point is
//!   discarded without expansion.
//! - **Dominated-candidate elimination**: candidates that can never be
//!   chosen under the group's largest budget are counted and skipped by
//!   the branch step's feasibility check.
//! - **Shared evaluation**: one memo table per search memoizes
//!   coverage-report combination per level, [`ChainedUnit`] area/delay
//!   per signature, and static-match tests per signature, so a
//!   256-config sweep pays for each only once.
//!
//! Configs that agree on `(opt_level, clock_ns)` share one search (the
//! candidate list depends only on those two); each config then *queries*
//! the shared frontier for its best feasible point. Greedy solutions
//! seed the frontier, so a query is never worse than the greedy pick —
//! the guarantee [`AsipDesigner::design_from_report`] relies on for its
//! "byte-identical or strictly better" contract.

use crate::cost::ChainedUnit;
use crate::extension::{AsipDesign, IsaExtension};
use crate::rewrite;
use crate::select::{AsipDesigner, DesignConstraints};
use asip_chains::{SequenceReport, Signature};
use asip_ir::Program;
use asip_opt::{OptLevel, ScheduleGraph};
use std::collections::{BTreeMap, BinaryHeap};

/// Benefit improvements below this are ties: the greedy design is kept
/// so selection stays byte-identical wherever the frontier cannot
/// strictly beat it.
pub(crate) const EPS: f64 = 1e-9;

/// Expansion budget per search group. The subset space is tiny for
/// paper-sized reports, but a combined suite report can hold dozens of
/// candidates; the cap bounds worst-case work deterministically. Greedy
/// seeding keeps every query correct (never worse than greedy) even if
/// the cap is hit before exhaustion.
const MAX_EXPANSIONS: usize = 50_000;

/// Compiler feedback for one optimization level: every suite member's
/// schedule at that level, paired with its program.
///
/// All [`LevelFeedback`] entries passed to one
/// [`AsipDesigner::explore_design_space`] call must describe the *same*
/// program suite (the schedules differ per level, the programs do not);
/// the search memoizes static-match tests per signature across levels
/// on that invariant.
#[derive(Debug, Clone)]
pub struct LevelFeedback<'a> {
    /// The optimization level the schedules were produced at.
    pub level: OptLevel,
    /// `(schedule, program)` per suite member.
    pub suite: Vec<(&'a ScheduleGraph, &'a Program)>,
}

/// One non-dominated point of a search group's (area, opcode slots,
/// benefit) space, with the extension set that realizes it.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The optimization level of the search group that produced this
    /// point.
    pub level: OptLevel,
    /// The clock period (ns) of the search group.
    pub clock_ns: f64,
    /// Total extension area of the set (gate equivalents).
    pub area: f64,
    /// Estimated benefit: the summed dynamic frequency (percent) the
    /// set's extensions cover.
    pub benefit: f64,
    /// Opcode slots used (number of extensions).
    pub extensions: usize,
    /// The extension set realizing this point.
    pub design: AsipDesign,
}

/// Work counters of one [`AsipDesigner::explore_design_space`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search groups run (one per distinct `(opt_level, clock_ns)`).
    pub groups: usize,
    /// Candidates considered across groups (post report filtering).
    pub candidates: usize,
    /// Candidates that could never fit the group's largest budget.
    pub eliminated: usize,
    /// Nodes expanded (popped and branched).
    pub expanded: usize,
    /// Nodes pruned by the dominance test on their bound.
    pub pruned: usize,
    /// Memo-table hits (shared cost/match/report evaluations reused).
    pub memo_hits: usize,
    /// Memo-table misses (evaluations actually performed).
    pub memo_misses: usize,
}

/// The pruned design space produced by
/// [`AsipDesigner::explore_design_space`]: per-config winning designs
/// plus the pareto frontier they were drawn from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesignSpace {
    /// `(constraints, winning design)` per requested config, in
    /// canonical (sorted, deduplicated) constraint order.
    pub configs: Vec<(DesignConstraints, AsipDesign)>,
    /// Non-dominated (area, slots, benefit) points across all search
    /// groups, sorted by (level, clock, area, slots).
    pub frontier: Vec<ParetoPoint>,
    /// Search work counters.
    pub stats: SearchStats,
}

impl DesignSpace {
    /// The winning design for `constraints`, if that exact config was
    /// part of the explored set.
    pub fn design_for(&self, constraints: &DesignConstraints) -> Option<&AsipDesign> {
        self.configs
            .iter()
            .find(|(c, _)| same_constraints(c, constraints))
            .map(|(_, d)| d)
    }

    /// Number of explored configs.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when no configs were explored.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The frontier points of one `(level, clock)` search group, in
    /// increasing-area order.
    pub fn frontier_at(
        &self,
        level: OptLevel,
        clock_ns: f64,
    ) -> impl Iterator<Item = &ParetoPoint> {
        self.frontier
            .iter()
            .filter(move |p| p.level == level && p.clock_ns.to_bits() == clock_ns.to_bits())
    }
}

/// Exact configuration identity (floats by bit pattern, like the
/// session cache keys).
fn same_constraints(a: &DesignConstraints, b: &DesignConstraints) -> bool {
    a.area_budget.to_bits() == b.area_budget.to_bits()
        && a.clock_ns.to_bits() == b.clock_ns.to_bits()
        && a.max_extensions == b.max_extensions
        && a.opt_level == b.opt_level
}

/// Canonical config order: by level, then area budget, clock, opcode
/// budget. Sorting (and deduplicating) the constraint set makes the
/// result — and any cache key folded over it — independent of caller
/// order. [`AsipDesigner::explore_design_space`] applies this itself;
/// callers that build cache keys over a grid should apply it too so
/// key identity matches result identity.
pub fn canonicalize_configs(configs: &[DesignConstraints]) -> Vec<DesignConstraints> {
    let mut out = configs.to_vec();
    out.sort_by(|a, b| {
        (a.opt_level.number())
            .cmp(&b.opt_level.number())
            .then_with(|| a.area_budget.total_cmp(&b.area_budget))
            .then_with(|| a.clock_ns.total_cmp(&b.clock_ns))
            .then_with(|| a.max_extensions.cmp(&b.max_extensions))
    });
    out.dedup_by(|a, b| same_constraints(a, b));
    out
}

// -- the per-search memo table -----------------------------------------

/// Shared evaluations of one design-space search: chained-unit costs
/// and static-match tests per signature. Keyed by signature only — the
/// program suite is fixed for the search (see [`LevelFeedback`]).
#[derive(Debug, Default)]
pub(crate) struct MemoTable {
    units: BTreeMap<Signature, (f64, f64)>,
    matchable: BTreeMap<Signature, bool>,
    hits: usize,
    misses: usize,
}

impl MemoTable {
    /// `(area, delay_ns)` of the chained unit implementing `sig`.
    fn unit(&mut self, sig: &Signature) -> (f64, f64) {
        if let Some(&cost) = self.units.get(sig) {
            self.hits += 1;
            return cost;
        }
        self.misses += 1;
        let unit = ChainedUnit::new(sig.classes().to_vec());
        let cost = (unit.area(), unit.delay_ns());
        self.units.insert(sig.clone(), cost);
        cost
    }

    /// Whether `sig` statically matches a fusable run in any program.
    fn matches(&mut self, sig: &Signature, programs: &[&Program]) -> bool {
        if let Some(&m) = self.matchable.get(sig) {
            self.hits += 1;
            return m;
        }
        self.misses += 1;
        let m = programs
            .iter()
            .any(|program| rewrite::Rewriter::count_static_matches(program, sig) > 0);
        self.matchable.insert(sig.clone(), m);
        m
    }

    fn counters(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }
}

/// `retain_matchable` (see [`select`](crate::select)) through the memo
/// table: drop fusable candidates that never statically match any
/// program.
fn retain_matchable_memo(
    report: &SequenceReport,
    programs: &[&Program],
    memo: &mut MemoTable,
) -> SequenceReport {
    SequenceReport::from_parts(
        report.name.clone(),
        report
            .entries()
            .iter()
            .filter(|(sig, _)| !rewrite::is_fusable_signature(sig) || memo.matches(sig, programs))
            .cloned()
            .collect(),
        report.total_profile_ops,
    )
}

// -- candidates --------------------------------------------------------

/// One selectable extension: a fusable signature that closes the
/// group's clock, with its estimated benefit (dynamic frequency) and
/// silicon cost.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub(crate) signature: Signature,
    pub(crate) benefit: f64,
    pub(crate) area: f64,
}

/// Build the candidate list for one `(report, clock)` pair: the same
/// filters and density order the greedy selector uses, so greedy index
/// sets and search index sets address the same list.
pub(crate) fn build_candidates(
    report: &SequenceReport,
    clock_ns: f64,
    memo: &mut MemoTable,
) -> Vec<Candidate> {
    let mut candidates: Vec<Candidate> = report
        .entries()
        .iter()
        .filter(|(sig, _)| rewrite::is_fusable_signature(sig))
        .filter_map(|(sig, stats)| {
            let (area, delay) = memo.unit(sig);
            if delay > clock_ns {
                return None;
            }
            Some(Candidate {
                signature: sig.clone(),
                benefit: stats.frequency,
                area,
            })
        })
        .collect();
    // benefit per area, descending — the greedy scan order (stable sort
    // keeps the report's frequency order on density ties)
    candidates.sort_by(|a, b| {
        (b.benefit / b.area)
            .partial_cmp(&(a.benefit / a.area))
            .expect("finite costs")
    });
    candidates
}

/// The greedy pick over a candidate list: scan in density order, skip
/// what does not fit. Returns chosen indices in scan (ascending)
/// order — exactly the selection order of the historical greedy core.
pub(crate) fn greedy_indices(
    candidates: &[Candidate],
    area_budget: f64,
    max_extensions: usize,
) -> Vec<u16> {
    let mut chosen = Vec::new();
    let mut area = 0.0;
    for (i, c) in candidates.iter().enumerate() {
        if chosen.len() >= max_extensions {
            break;
        }
        if area + c.area > area_budget {
            continue;
        }
        chosen.push(i as u16);
        area += c.area;
    }
    chosen
}

/// Materialize an extension set from chosen candidate indices
/// (ascending index order — the greedy selection order, so a design
/// built from greedy indices is byte-identical to the greedy design).
pub(crate) fn build_design(candidates: &[Candidate], chosen: &[u16]) -> AsipDesign {
    let mut design = AsipDesign::default();
    for &i in chosen {
        let c = &candidates[i as usize];
        design.extensions.push(IsaExtension {
            id: design.extensions.len() as u32,
            signature: c.signature.clone(),
            area: c.area,
            expected_benefit: c.benefit,
        });
        design.extension_area += c.area;
    }
    design
}

// Both sums fold from +0.0 rather than `Sum for f64`'s -0.0 identity:
// tie detection on the frontier is bit-exact, so the empty set must
// compare identical to the search root's literal 0.0.
pub(crate) fn benefit_of(candidates: &[Candidate], chosen: &[u16]) -> f64 {
    chosen
        .iter()
        .fold(0.0, |acc, &i| acc + candidates[i as usize].benefit)
}

fn area_of(candidates: &[Candidate], chosen: &[u16]) -> f64 {
    chosen
        .iter()
        .fold(0.0, |acc, &i| acc + candidates[i as usize].area)
}

// -- the best-first search ---------------------------------------------

/// A feasible extension set on (or once on) the pareto front.
#[derive(Debug, Clone)]
pub(crate) struct FrontPoint {
    pub(crate) area: f64,
    pub(crate) count: usize,
    pub(crate) benefit: f64,
    pub(crate) chosen: Vec<u16>,
}

/// `p` is at least as good as `q` on every axis.
fn dominates(p: &FrontPoint, q: &FrontPoint) -> bool {
    p.area <= q.area && p.count <= q.count && p.benefit >= q.benefit
}

fn ties(p: &FrontPoint, q: &FrontPoint) -> bool {
    p.area.to_bits() == q.area.to_bits() && p.count == q.count && p.benefit == q.benefit
}

/// Insert `q` unless a frontier point dominates it; remove points `q`
/// dominates. Exact (area, count, benefit) ties keep the
/// lexicographically smallest index set, so the surviving
/// representative never depends on heap pop order.
fn insert_point(front: &mut Vec<FrontPoint>, q: FrontPoint) -> bool {
    let beaten = front
        .iter()
        .any(|p| dominates(p, &q) && !(ties(p, &q) && q.chosen < p.chosen));
    if beaten {
        return false;
    }
    front.retain(|p| !dominates(&q, p));
    front.push(q);
    true
}

/// A partial extension set in the best-first queue, ordered by `bound`.
#[derive(Debug)]
struct Node {
    bound: f64,
    benefit: f64,
    area: f64,
    next: usize,
    chosen: Vec<u16>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound.to_bits() == other.bound.to_bits()
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound.total_cmp(&other.bound)
    }
}

/// Admissible completion bound from `candidates[from..]`: the minimum
/// of two relaxations — drop the slot cap (fractional area knapsack in
/// density order) and drop the area cap (the `slots_left` largest
/// remaining benefits). The true best completion satisfies both caps,
/// so it can exceed neither.
fn completion_bound(
    candidates: &[Candidate],
    from: usize,
    area_left: f64,
    slots_left: usize,
) -> f64 {
    if slots_left == 0 || from >= candidates.len() {
        return 0.0;
    }
    let mut fractional = 0.0;
    let mut area = area_left;
    for c in &candidates[from..] {
        if c.area <= area {
            fractional += c.benefit;
            area -= c.area;
        } else {
            fractional += c.benefit * (area / c.area).max(0.0);
            break;
        }
    }
    let mut benefits: Vec<f64> = candidates[from..].iter().map(|c| c.benefit).collect();
    benefits.sort_by(|a, b| b.total_cmp(a));
    let slot_capped: f64 = benefits.iter().take(slots_left).sum();
    fractional.min(slot_capped)
}

/// Result of one group search.
pub(crate) struct GroupSearch {
    pub(crate) front: Vec<FrontPoint>,
    pub(crate) expanded: usize,
    pub(crate) pruned: usize,
}

/// Best-first branch-and-bound over subsets of `candidates` under the
/// group caps, seeded with known-good solutions (the greedy picks).
pub(crate) fn search_group(
    candidates: &[Candidate],
    area_cap: f64,
    ext_cap: usize,
    seeds: impl IntoIterator<Item = Vec<u16>>,
) -> GroupSearch {
    let mut front: Vec<FrontPoint> = Vec::new();
    for chosen in seeds {
        let point = FrontPoint {
            area: area_of(candidates, &chosen),
            count: chosen.len(),
            benefit: benefit_of(candidates, &chosen),
            chosen,
        };
        insert_point(&mut front, point);
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: completion_bound(candidates, 0, area_cap, ext_cap),
        benefit: 0.0,
        area: 0.0,
        next: 0,
        chosen: Vec::new(),
    });
    let mut expanded = 0;
    let mut pruned = 0;
    while let Some(node) = heap.pop() {
        if expanded >= MAX_EXPANSIONS {
            pruned += 1 + heap.len();
            break;
        }
        // a frontier point at least as small that already meets the
        // node's *bound* dominates every completion of this node
        let covered = front.iter().any(|p| {
            p.area <= node.area && p.count <= node.chosen.len() && p.benefit >= node.bound
        });
        if covered {
            pruned += 1;
            continue;
        }
        expanded += 1;
        insert_point(
            &mut front,
            FrontPoint {
                area: node.area,
                count: node.chosen.len(),
                benefit: node.benefit,
                chosen: node.chosen.clone(),
            },
        );
        if node.next >= candidates.len() {
            continue;
        }
        let c = &candidates[node.next];
        // include branch (when feasible under the group caps)
        if node.chosen.len() < ext_cap && node.area + c.area <= area_cap {
            let mut chosen = node.chosen.clone();
            chosen.push(node.next as u16);
            let benefit = node.benefit + c.benefit;
            let area = node.area + c.area;
            let bound = benefit
                + completion_bound(
                    candidates,
                    node.next + 1,
                    area_cap - area,
                    ext_cap - chosen.len(),
                );
            heap.push(Node {
                bound,
                benefit,
                area,
                next: node.next + 1,
                chosen,
            });
        }
        // exclude branch
        let bound = node.benefit
            + completion_bound(
                candidates,
                node.next + 1,
                area_cap - node.area,
                ext_cap - node.chosen.len(),
            );
        heap.push(Node {
            bound,
            benefit: node.benefit,
            area: node.area,
            next: node.next + 1,
            chosen: node.chosen,
        });
    }
    // deterministic, increasing-area presentation order
    front.sort_by(|a, b| {
        a.area
            .total_cmp(&b.area)
            .then_with(|| a.count.cmp(&b.count))
            .then_with(|| a.benefit.total_cmp(&b.benefit))
            .then_with(|| a.chosen.cmp(&b.chosen))
    });
    GroupSearch {
        front,
        expanded,
        pruned,
    }
}

/// The best frontier point feasible under `(area_budget, max_ext)`:
/// highest benefit, ties broken toward lower area, fewer slots, then
/// the lexicographically smallest index set.
pub(crate) fn best_in(
    front: &[FrontPoint],
    area_budget: f64,
    max_extensions: usize,
) -> Option<&FrontPoint> {
    front
        .iter()
        .filter(|p| p.area <= area_budget && p.count <= max_extensions)
        .max_by(|a, b| {
            a.benefit
                .total_cmp(&b.benefit)
                .then_with(|| b.area.total_cmp(&a.area))
                .then_with(|| b.count.cmp(&a.count))
                .then_with(|| b.chosen.cmp(&a.chosen))
        })
}

// -- the multi-config entry point --------------------------------------

impl AsipDesigner {
    /// Explore every config of a constraint grid in one incremental
    /// frontier search, sharing coverage reports, [`ChainedUnit`] cost
    /// evaluations and static-match tests across configs through a
    /// per-search memo table.
    ///
    /// `feedback` must hold one [`LevelFeedback`] (same program suite,
    /// that level's schedules) for every `opt_level` appearing in
    /// `configs`. Configs are canonicalized (sorted, deduplicated);
    /// configs sharing `(opt_level, clock_ns)` share one search group.
    /// Every per-config winner has estimated benefit greater than or
    /// equal to the greedy pick at the same budget, and equals the
    /// greedy design byte-for-byte when the frontier cannot strictly
    /// beat it — the same contract as
    /// [`AsipDesigner::design_from_report`].
    ///
    /// The designer's own `constraints` are not consulted (each config
    /// carries its own); its detector configuration drives the coverage
    /// studies.
    ///
    /// # Panics
    ///
    /// Panics when a config's level has no feedback entry, or a
    /// feedback suite is empty — both are caller contract violations,
    /// like the empty suite in
    /// [`AsipDesigner::design_from_schedules`].
    pub fn explore_design_space(
        &self,
        feedback: &[LevelFeedback<'_>],
        configs: &[DesignConstraints],
    ) -> DesignSpace {
        let configs = canonicalize_configs(configs);
        let mut stats = SearchStats::default();
        let mut memo = MemoTable::default();

        // one combined matchable report per distinct level
        let mut reports: BTreeMap<u8, SequenceReport> = BTreeMap::new();
        for config in &configs {
            let level = config.opt_level;
            if reports.contains_key(&level.number()) {
                stats.memo_hits += 1;
                continue;
            }
            stats.memo_misses += 1;
            let fb = feedback
                .iter()
                .find(|f| f.level == level)
                .unwrap_or_else(|| panic!("no feedback for {level:?}"));
            assert!(!fb.suite.is_empty(), "feedback suite must not be empty");
            let per_member: Vec<SequenceReport> = fb
                .suite
                .iter()
                .map(|(graph, _)| self.coverage_report(graph))
                .collect();
            let combined = asip_chains::combine(&per_member);
            let programs: Vec<&Program> = fb.suite.iter().map(|(_, program)| *program).collect();
            reports.insert(
                level.number(),
                retain_matchable_memo(&combined, &programs, &mut memo),
            );
        }

        // group configs by (level, clock): same candidate list → one
        // shared search under the group's largest caps
        let mut groups: BTreeMap<(u8, u64), Vec<DesignConstraints>> = BTreeMap::new();
        for config in &configs {
            groups
                .entry((config.opt_level.number(), config.clock_ns.to_bits()))
                .or_default()
                .push(*config);
        }

        let mut searched: BTreeMap<(u8, u64), (Vec<Candidate>, Vec<FrontPoint>)> = BTreeMap::new();
        let mut frontier: Vec<ParetoPoint> = Vec::new();
        for (&(level_no, clock_bits), group) in &groups {
            let report = &reports[&level_no];
            let clock_ns = f64::from_bits(clock_bits);
            let candidates = build_candidates(report, clock_ns, &mut memo);
            let area_cap = group.iter().map(|c| c.area_budget).fold(0.0_f64, f64::max);
            let ext_cap = group.iter().map(|c| c.max_extensions).max().unwrap_or(0);
            stats.groups += 1;
            stats.candidates += candidates.len();
            stats.eliminated += candidates.iter().filter(|c| c.area > area_cap).count();
            let seeds = group
                .iter()
                .map(|c| greedy_indices(&candidates, c.area_budget, c.max_extensions));
            let search = search_group(&candidates, area_cap, ext_cap, seeds);
            stats.expanded += search.expanded;
            stats.pruned += search.pruned;
            let level = group[0].opt_level;
            for p in &search.front {
                frontier.push(ParetoPoint {
                    level,
                    clock_ns,
                    area: p.area,
                    benefit: p.benefit,
                    extensions: p.count,
                    design: build_design(&candidates, &p.chosen),
                });
            }
            searched.insert((level_no, clock_bits), (candidates, search.front));
        }

        // per-config winners, in canonical config order
        let mut out = Vec::with_capacity(configs.len());
        for config in &configs {
            let (candidates, front) =
                &searched[&(config.opt_level.number(), config.clock_ns.to_bits())];
            let greedy = greedy_indices(candidates, config.area_budget, config.max_extensions);
            let greedy_benefit = benefit_of(candidates, &greedy);
            let best = best_in(front, config.area_budget, config.max_extensions);
            let design = match best {
                Some(p) if p.benefit > greedy_benefit + EPS => build_design(candidates, &p.chosen),
                _ => build_design(candidates, &greedy),
            };
            out.push((*config, design));
        }

        let (memo_hits, memo_misses) = memo.counters();
        stats.memo_hits += memo_hits;
        stats.memo_misses += memo_misses;
        DesignSpace {
            configs: out,
            frontier,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_chains::SeqStats;

    fn report(entries: Vec<(&str, f64)>) -> SequenceReport {
        SequenceReport::from_parts(
            "t".into(),
            entries
                .into_iter()
                .map(|(s, f)| {
                    (
                        s.parse::<Signature>().expect("ok"),
                        SeqStats {
                            frequency: f,
                            occurrences: 1,
                        },
                    )
                })
                .collect(),
            1000,
        )
    }

    fn cands(entries: Vec<(&str, f64)>) -> Vec<Candidate> {
        let mut memo = MemoTable::default();
        build_candidates(&report(entries), 40.0, &mut memo)
    }

    #[test]
    fn search_beats_greedy_where_greedy_is_suboptimal() {
        // classic knapsack trap: the densest item blocks the best pair.
        // Areas: add-add ~2 adders, multiply-add, multiply-shift bigger.
        let candidates = cands(vec![
            ("add-add", 10.0),
            ("multiply-add", 9.5),
            ("multiply-shift", 9.0),
        ]);
        let add_add = candidates
            .iter()
            .position(|c| c.signature.to_string() == "add-add")
            .expect("present");
        // budget fits the two multiply chains OR add-add alone + one
        let budget = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != add_add)
            .map(|(_, c)| c.area)
            .sum::<f64>();
        let greedy = greedy_indices(&candidates, budget, 2);
        let search = search_group(&candidates, budget, 2, [greedy.clone()]);
        let best = best_in(&search.front, budget, 2).expect("non-empty");
        assert!(
            best.benefit >= benefit_of(&candidates, &greedy) - EPS,
            "search can never lose to its own seed"
        );
    }

    #[test]
    fn frontier_points_are_mutually_non_dominated() {
        let candidates = cands(vec![
            ("add-add", 10.0),
            ("add-subtract", 8.0),
            ("multiply-add", 12.0),
            ("add-shift", 5.0),
        ]);
        let search = search_group(&candidates, 1e9, 4, [Vec::new()]);
        let front = &search.front;
        assert!(!front.is_empty());
        for (i, p) in front.iter().enumerate() {
            for (j, q) in front.iter().enumerate() {
                if i != j {
                    assert!(
                        !(dominates(p, q)),
                        "frontier holds a dominated point: {q:?} under {p:?}"
                    );
                }
            }
        }
        // with effectively unbounded caps the full set is on the front
        let best = best_in(front, 1e9, 4).expect("non-empty");
        let total: f64 = candidates.iter().map(|c| c.benefit).sum();
        assert!((best.benefit - total).abs() < EPS);
    }

    #[test]
    fn completion_bound_is_admissible_under_slot_caps() {
        // one dense-but-cheap candidate, one huge-benefit candidate:
        // with one slot the bound must not drop below the best single
        let candidates = vec![
            Candidate {
                signature: "add-add".parse().expect("ok"),
                benefit: 1.0,
                area: 0.1,
            },
            Candidate {
                signature: "multiply-add".parse().expect("ok"),
                benefit: 100.0,
                area: 100.0,
            },
        ];
        let bound = completion_bound(&candidates, 0, 1000.0, 1);
        assert!(bound >= 100.0, "admissible bound covers the optimum");
        let search = search_group(&candidates, 1000.0, 1, [Vec::new()]);
        let best = best_in(&search.front, 1000.0, 1).expect("non-empty");
        assert!((best.benefit - 100.0).abs() < EPS, "slot-capped optimum");
    }

    #[test]
    fn greedy_indices_match_greedy_design() {
        let candidates = cands(vec![
            ("multiply-add", 20.0),
            ("add-add", 10.0),
            ("add-compare", 5.0),
        ]);
        let chosen = greedy_indices(&candidates, 6000.0, 4);
        let design = build_design(&candidates, &chosen);
        assert_eq!(design.len(), chosen.len());
        assert!((design.extension_area - area_of(&candidates, &chosen)).abs() < EPS);
        for (k, ext) in design.extensions.iter().enumerate() {
            assert_eq!(ext.id, k as u32, "ids follow selection order");
        }
    }

    #[test]
    fn empty_seed_point_is_positive_zero() {
        // `Sum for f64` folds from -0.0; an empty greedy seed (a budget
        // too small for any candidate) must still land on the same
        // bit pattern as the search root so bit-exact ties collapse
        let candidates = cands(vec![("multiply-add", 20.0)]);
        assert_eq!(area_of(&candidates, &[]).to_bits(), 0.0f64.to_bits());
        assert_eq!(benefit_of(&candidates, &[]).to_bits(), 0.0f64.to_bits());
        let search = search_group(&candidates, 6000.0, 4, [Vec::new()]);
        let empty = &search.front[0];
        assert_eq!(empty.count, 0);
        assert_eq!(empty.area.to_bits(), 0.0f64.to_bits());
        assert_eq!(empty.benefit.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn canonical_config_order_is_caller_order_independent() {
        let a = DesignConstraints {
            area_budget: 1000.0,
            ..DesignConstraints::default()
        };
        let b = DesignConstraints {
            area_budget: 2000.0,
            ..DesignConstraints::default()
        };
        let fwd = canonicalize_configs(&[a, b, a]);
        let rev = canonicalize_configs(&[b, a, b, a]);
        assert_eq!(fwd.len(), 2);
        assert_eq!(
            fwd.iter()
                .map(|c| c.area_budget.to_bits())
                .collect::<Vec<_>>(),
            rev.iter()
                .map(|c| c.area_budget.to_bits())
                .collect::<Vec<_>>(),
        );
    }
}
