//! Rewriting 3-address code to use chained super-instructions.
//!
//! The matcher is deliberately conservative — it fuses only runs it can
//! prove semantics-preserving:
//!
//! - every op in the run is a pure binary ALU operation (no memory, no
//!   control, no intrinsics);
//! - each op's result feeds the *next op only* (single local use, dead
//!   afterwards), either as its left operand or as either operand of a
//!   commutative operation;
//! - the ops are consecutive in the block (a scheduler would have fused
//!   exactly such runs; percolation can make more runs consecutive, but
//!   rewriting stays valid regardless of how many it finds).
//!
//! The fused [`asip_ir::InstKind::Chained`] instruction evaluates as:
//! `acc = classes[0](inputs[0], inputs[1])`, then
//! `acc = classes[i](acc, inputs[i + 1])` — the contract shared with
//! the simulator, so a rewritten program computes bit-identical results.

use crate::extension::AsipDesign;
use asip_chains::Signature;
use asip_ir::{BinOp, DefUse, Inst, InstKind, OpClass, Operand, Program};

/// True if the rewriter can implement this signature as a chained
/// instruction (pure binary ALU classes only).
pub fn is_fusable_signature(sig: &Signature) -> bool {
    sig.classes().iter().all(|c| {
        matches!(
            c,
            OpClass::Add
                | OpClass::Sub
                | OpClass::Mul
                | OpClass::Div
                | OpClass::Shift
                | OpClass::Logic
                | OpClass::Compare
                | OpClass::FAdd
                | OpClass::FSub
                | OpClass::FMul
                | OpClass::FDiv
        )
    })
}

fn commutative(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        Add | Mul | And | Or | Xor | CmpEq | CmpNe | FAdd | FMul | FCmpEq | FCmpNe
    )
}

/// Applies an [`AsipDesign`] to programs.
#[derive(Debug, Clone)]
pub struct Rewriter {
    design: AsipDesign,
}

/// Statistics of one rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Chained instructions emitted.
    pub fused_chains: usize,
    /// Primitive instructions removed (fused away).
    pub removed_ops: usize,
}

impl Rewriter {
    /// A rewriter for the given design.
    pub fn new(design: AsipDesign) -> Self {
        Rewriter { design }
    }

    /// The design being applied.
    pub fn design(&self) -> &AsipDesign {
        &self.design
    }

    /// Rewrite a program in place; longest extensions are tried first at
    /// each position. Returns fusion statistics.
    pub fn apply(&self, program: &mut Program) -> RewriteStats {
        let mut stats = RewriteStats::default();
        // longest first so a MAC3 wins over a MAC at the same site
        let mut ext_order: Vec<usize> = (0..self.design.extensions.len()).collect();
        ext_order.sort_by_key(|&i| std::cmp::Reverse(self.design.extensions[i].signature.len()));

        loop {
            let du = DefUse::new(program);
            let Some((block, start, ext_idx)) = self.find_match(program, &du, &ext_order) else {
                return stats;
            };
            let ext = &self.design.extensions[ext_idx];
            let k = ext.signature.len();
            let fused = self.fuse_run(program, block, start, k, ext.id);
            let insts = &mut program.blocks[block].insts;
            insts.splice(start..start + k, [fused]);
            stats.fused_chains += 1;
            stats.removed_ops += k - 1;
        }
    }

    /// Count the fusable runs of `sig` present in `program` without
    /// rewriting (used by the designer to avoid spending area on
    /// extensions that would never fire).
    pub fn count_static_matches(program: &Program, sig: &Signature) -> usize {
        let du = DefUse::new(program);
        let probe = Rewriter::new(AsipDesign::default());
        let mut n = 0;
        for block in &program.blocks {
            for start in 0..block.insts.len() {
                if probe.matches_at(program, &du, block, start, sig) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Find the first fusable run matching any extension.
    fn find_match(
        &self,
        program: &Program,
        du: &DefUse,
        ext_order: &[usize],
    ) -> Option<(usize, usize, usize)> {
        for (bi, block) in program.blocks.iter().enumerate() {
            for start in 0..block.insts.len() {
                for &ei in ext_order {
                    let ext = &self.design.extensions[ei];
                    if self.matches_at(program, du, block, start, &ext.signature) {
                        return Some((bi, start, ei));
                    }
                }
            }
        }
        None
    }

    fn matches_at(
        &self,
        program: &Program,
        du: &DefUse,
        block: &asip_ir::Block,
        start: usize,
        sig: &Signature,
    ) -> bool {
        let k = sig.len();
        if start + k > block.insts.len() {
            return false;
        }
        let run = &block.insts[start..start + k];
        // classes match and every member is a pure binary ALU op
        for (inst, want) in run.iter().zip(sig.classes()) {
            let InstKind::Binary { .. } = inst.kind else {
                return false;
            };
            if program.class_of(inst) != *want {
                return false;
            }
        }
        // each op feeds exactly the next one, in a fusable position
        for w in run.windows(2) {
            let prev = &w[0];
            let next = &w[1];
            let d = prev.dst().expect("binary ops define");
            let InstKind::Binary { op, lhs, rhs, .. } = &next.kind else {
                return false;
            };
            let feeds_lhs = lhs.reg() == Some(d);
            let feeds_rhs = rhs.reg() == Some(d);
            if !(feeds_lhs || (feeds_rhs && commutative(*op))) {
                return false;
            }
            if feeds_lhs && feeds_rhs {
                return false; // both operands: cannot express with one link
            }
            // the intermediate value must die at the next op: its only
            // use anywhere is `next`
            let uses = du.uses_of(d);
            if uses.len() != 1 || uses[0] != next.id {
                return false;
            }
            // and it must not be redefined elsewhere in a way that makes
            // removal unsafe: single def (this one)
            if du.defs_of(d).len() != 1 {
                return false;
            }
        }
        true
    }

    /// Build the Chained instruction for a verified run.
    fn fuse_run(
        &self,
        program: &mut Program,
        block: usize,
        start: usize,
        k: usize,
        ext_id: u32,
    ) -> Inst {
        let run: Vec<Inst> = program.blocks[block].insts[start..start + k].to_vec();
        let mut inputs: Vec<Operand> = Vec::with_capacity(k + 1);
        let mut ops: Vec<BinOp> = Vec::with_capacity(k);
        let InstKind::Binary { op, lhs, rhs, .. } = &run[0].kind else {
            unreachable!("verified binary");
        };
        inputs.push(*lhs);
        inputs.push(*rhs);
        ops.push(*op);
        for w in run.windows(2) {
            let d = w[0].dst().expect("binary ops define");
            let InstKind::Binary { op, lhs, rhs, .. } = &w[1].kind else {
                unreachable!("verified binary");
            };
            // the external (non-chained) operand
            let external = if lhs.reg() == Some(d) { *rhs } else { *lhs };
            inputs.push(external);
            ops.push(*op);
        }
        let dst = run[k - 1].dst().expect("binary ops define");
        let id = program.new_inst_id();
        Inst::new(
            id,
            InstKind::Chained {
                ext: ext_id,
                dst,
                inputs,
                ops,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::IsaExtension;
    use asip_ir::{Operand, ProgramBuilder, Ty};
    use asip_sim::{DataSet, Simulator};

    fn mac_design() -> AsipDesign {
        let sig: Signature = "multiply-add".parse().expect("ok");
        AsipDesign {
            extensions: vec![IsaExtension {
                id: 0,
                signature: sig,
                area: 1286.0,
                expected_benefit: 10.0,
            }],
            extension_area: 1286.0,
        }
    }

    /// y[0] = x[0]*x[1] + x[2], computed with an intermediate temp.
    fn mac_program() -> Program {
        let mut b = ProgramBuilder::new("m");
        let x = b.input_array("x", Ty::Int, 3);
        let y = b.output_array("y", Ty::Int, 1);
        let e = b.entry_block();
        b.select_block(e);
        let a = b.load(x, Operand::imm_int(0));
        let c = b.load(x, Operand::imm_int(1));
        let d = b.load(x, Operand::imm_int(2));
        let t = b.binary(BinOp::Mul, a.into(), c.into());
        let s = b.binary(BinOp::Add, t.into(), d.into());
        b.store(y, Operand::imm_int(0), s.into());
        b.ret(None);
        b.finish().expect("valid")
    }

    fn run(p: &Program) -> i64 {
        let mut ds = DataSet::new();
        ds.bind_ints("x", vec![3, 5, 7]);
        let e = Simulator::new(p).run(&ds).expect("runs");
        e.array(p, "y").expect("output")[0].as_int()
    }

    #[test]
    fn fuses_mac_and_preserves_semantics() {
        let mut p = mac_program();
        let before = run(&p);
        let before_count = p.inst_count();
        let stats = Rewriter::new(mac_design()).apply(&mut p);
        assert_eq!(stats.fused_chains, 1);
        assert_eq!(stats.removed_ops, 1);
        assert_eq!(p.inst_count(), before_count - 1);
        assert!(p
            .insts()
            .any(|(_, i)| matches!(i.kind, InstKind::Chained { .. })));
        assert_eq!(run(&p), before, "rewriting must preserve results");
        assert_eq!(before, 3 * 5 + 7);
    }

    #[test]
    fn commutative_rhs_feed_is_fused() {
        // s = d + t (chain value on the rhs of a commutative add)
        let mut b = ProgramBuilder::new("m");
        let x = b.input_array("x", Ty::Int, 3);
        let y = b.output_array("y", Ty::Int, 1);
        let e = b.entry_block();
        b.select_block(e);
        let a = b.load(x, Operand::imm_int(0));
        let c = b.load(x, Operand::imm_int(1));
        let d = b.load(x, Operand::imm_int(2));
        let t = b.binary(BinOp::Mul, a.into(), c.into());
        let s = b.binary(BinOp::Add, d.into(), t.into());
        b.store(y, Operand::imm_int(0), s.into());
        b.ret(None);
        let mut p = b.finish().expect("valid");
        let before = run(&p);
        let stats = Rewriter::new(mac_design()).apply(&mut p);
        assert_eq!(stats.fused_chains, 1);
        assert_eq!(run(&p), before);
    }

    #[test]
    fn non_commutative_rhs_feed_is_rejected() {
        // s = d - t: the chain value is subtrahend; a (mul)-(sub) unit
        // computing acc - ext would get it backwards, so no fusion
        let sig: Signature = "multiply-subtract".parse().expect("ok");
        let design = AsipDesign {
            extensions: vec![IsaExtension {
                id: 0,
                signature: sig,
                area: 1.0,
                expected_benefit: 1.0,
            }],
            extension_area: 1.0,
        };
        let mut b = ProgramBuilder::new("m");
        let x = b.input_array("x", Ty::Int, 3);
        let y = b.output_array("y", Ty::Int, 1);
        let e = b.entry_block();
        b.select_block(e);
        let a = b.load(x, Operand::imm_int(0));
        let c = b.load(x, Operand::imm_int(1));
        let d = b.load(x, Operand::imm_int(2));
        let t = b.binary(BinOp::Mul, a.into(), c.into());
        let s = b.binary(BinOp::Sub, d.into(), t.into());
        b.store(y, Operand::imm_int(0), s.into());
        b.ret(None);
        let mut p = b.finish().expect("valid");
        let stats = Rewriter::new(design).apply(&mut p);
        assert_eq!(stats.fused_chains, 0);
    }

    #[test]
    fn intermediate_with_second_use_is_not_fused() {
        // t is used by the add AND stored: fusing would lose it
        let mut b = ProgramBuilder::new("m");
        let x = b.input_array("x", Ty::Int, 3);
        let y = b.output_array("y", Ty::Int, 2);
        let e = b.entry_block();
        b.select_block(e);
        let a = b.load(x, Operand::imm_int(0));
        let c = b.load(x, Operand::imm_int(1));
        let d = b.load(x, Operand::imm_int(2));
        let t = b.binary(BinOp::Mul, a.into(), c.into());
        let s = b.binary(BinOp::Add, t.into(), d.into());
        b.store(y, Operand::imm_int(0), s.into());
        b.store(y, Operand::imm_int(1), t.into());
        b.ret(None);
        let mut p = b.finish().expect("valid");
        let stats = Rewriter::new(mac_design()).apply(&mut p);
        assert_eq!(stats.fused_chains, 0);
    }

    #[test]
    fn fusable_signature_policy() {
        assert!(is_fusable_signature(&"multiply-add".parse().expect("ok")));
        assert!(is_fusable_signature(&"fmultiply-fadd".parse().expect("ok")));
        assert!(is_fusable_signature(&"add-shift-add".parse().expect("ok")));
        assert!(!is_fusable_signature(&"load-multiply".parse().expect("ok")));
        assert!(!is_fusable_signature(&"add-store".parse().expect("ok")));
        assert!(!is_fusable_signature(&"add-move".parse().expect("ok")));
    }

    #[test]
    fn rewritten_program_validates() {
        let mut p = mac_program();
        Rewriter::new(mac_design()).apply(&mut p);
        assert!(p.validate().is_ok());
    }
}
