//! Before/after evaluation of a design on the profiling simulator.

use crate::extension::AsipDesign;
use crate::rewrite::{RewriteStats, Rewriter};
use asip_ir::Program;
use asip_sim::{DataSet, Engine, SimError, Simulator};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Measured effect of applying a design to one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Dynamic operations of the baseline run (single-issue: cycles).
    pub base_cycles: u64,
    /// Dynamic operations after rewriting (chained ops count one cycle).
    pub asip_cycles: u64,
    /// `base_cycles / asip_cycles`.
    pub speedup: f64,
    /// Static chains fused.
    pub fused_chains: usize,
    /// Extension area spent.
    pub extension_area: f64,
}

/// A design applied to a program and decoded, once: the rewritten
/// program's [`Engine`] plus the static rewrite stats, ready to be
/// measured against any number of datasets or baseline engines.
///
/// Rewriting and decoding a candidate design is the expensive half of
/// an evaluation; design sweeps re-measure the same `(program,
/// design)` pair across datasets and constraint grids, so sessions
/// cache `PreparedDesign`s keyed by design (see the session's
/// rewritten-engine cache) instead of re-deriving one per candidate.
#[derive(Debug)]
pub struct PreparedDesign {
    engine: Engine,
    stats: RewriteStats,
    area: f64,
}

impl PreparedDesign {
    /// The decoded engine for the rewritten program.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Static chains the rewriter fused.
    pub fn fused_chains(&self) -> usize {
        self.stats.fused_chains
    }

    /// Extension area of the design this was prepared from.
    pub fn extension_area(&self) -> f64 {
        self.area
    }
}

/// Rewrite a copy of `program` with `design` and decode the result
/// into a reusable [`PreparedDesign`].
///
/// # Panics
///
/// As [`Engine::new`]: panics if the rewriter produced a structurally
/// invalid program (a rewriter bug, not an input error).
pub fn prepare(program: &Program, design: &AsipDesign) -> PreparedDesign {
    let mut rewritten = program.clone();
    let stats: RewriteStats = Rewriter::new(design.clone()).apply(&mut rewritten);
    PreparedDesign {
        engine: Engine::new(Arc::new(rewritten)),
        stats,
        area: design.extension_area,
    }
}

/// Measure a prepared design against the baseline engine on `data`:
/// both runs go through the pooled engines, and the outputs of the two
/// runs are compared, so a rewriter bug can never masquerade as a
/// speedup.
///
/// # Errors
///
/// Propagates simulator errors from either run.
///
/// # Panics
///
/// Panics if the rewritten program computes different outputs — that
/// would be a semantics bug in the rewriter, not an input error.
pub fn evaluate_prepared(
    base_engine: &Engine,
    prepared: &PreparedDesign,
    data: &DataSet,
) -> Result<Evaluation, SimError> {
    let base = base_engine.run(data)?;
    let after = prepared.engine.run(data)?;
    assert_eq!(
        base.memory, after.memory,
        "rewritten program must compute identical outputs"
    );
    let base_cycles = base.profile.total_ops();
    let asip_cycles = after.profile.total_ops();
    Ok(Evaluation {
        base_cycles,
        asip_cycles,
        speedup: base_cycles as f64 / asip_cycles.max(1) as f64,
        fused_chains: prepared.stats.fused_chains,
        extension_area: prepared.area,
    })
}

/// Rewrite a copy of `program` with `design` and measure both versions
/// on `data` (one-shot convenience over [`prepare`] +
/// [`evaluate_prepared`]).
///
/// # Errors
///
/// Propagates simulator errors from either run.
///
/// # Panics
///
/// Panics if the rewritten program computes different outputs — that
/// would be a semantics bug in the rewriter, not an input error.
pub fn evaluate(
    program: &Program,
    design: &AsipDesign,
    data: &DataSet,
) -> Result<Evaluation, SimError> {
    let base = Simulator::new(program).run(data)?;
    let prepared = prepare(program, design);
    let after = prepared.engine.run(data)?;
    assert_eq!(
        base.memory, after.memory,
        "rewritten program must compute identical outputs"
    );
    let base_cycles = base.profile.total_ops();
    let asip_cycles = after.profile.total_ops();
    Ok(Evaluation {
        base_cycles,
        asip_cycles,
        speedup: base_cycles as f64 / asip_cycles.max(1) as f64,
        fused_chains: prepared.stats.fused_chains,
        extension_area: prepared.area,
    })
}

/// As [`evaluate`], but the baseline run reuses an already-decoded
/// [`Engine`] for the program — the path sessions take when no cached
/// [`PreparedDesign`] exists yet.
///
/// # Errors
///
/// Propagates simulator errors from either run.
///
/// # Panics
///
/// As [`evaluate`]: panics if the rewritten program computes different
/// outputs.
pub fn evaluate_with_engine(
    base_engine: &Engine,
    design: &AsipDesign,
    data: &DataSet,
) -> Result<Evaluation, SimError> {
    let prepared = prepare(base_engine.program(), design);
    evaluate_prepared(base_engine, &prepared, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{AsipDesigner, DesignConstraints};

    #[test]
    fn design_loop_speeds_up_sewha() {
        let benches = asip_benchmarks::registry();
        let b = benches.find("sewha").expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("runs");
        let design = AsipDesigner::new(DesignConstraints::default()).design_for(&program, &profile);
        assert!(!design.is_empty(), "feedback should propose extensions");
        let eval = evaluate(&program, &design, &b.dataset()).expect("evaluates");
        assert!(eval.fused_chains > 0, "extensions should fire in the code");
        assert!(
            eval.speedup > 1.0,
            "chaining must reduce cycle count, got {:.3}",
            eval.speedup
        );
        assert!(eval.asip_cycles < eval.base_cycles);
    }

    #[test]
    fn empty_design_is_identity() {
        let benches = asip_benchmarks::registry();
        let b = benches.find("bspline").expect("built-in");
        let program = b.compile().expect("compiles");
        let eval = evaluate(&program, &AsipDesign::default(), &b.dataset()).expect("evaluates");
        assert_eq!(eval.base_cycles, eval.asip_cycles);
        assert_eq!(eval.speedup, 1.0);
        assert_eq!(eval.fused_chains, 0);
    }

    #[test]
    fn suite_design_serves_multiple_benchmarks() {
        // one ASIP for several applications: the suite-combined design
        // must speed up (or leave unchanged) every member, with a real
        // win on at least one
        let benches = asip_benchmarks::registry();
        let suite = ["sewha", "bspline", "flatten"];
        let compiled: Vec<_> = suite
            .iter()
            .map(|n| {
                let b = *benches.find(n).expect("built-in");
                let program = b.compile().expect("compiles");
                let profile = b.profile(&program).expect("runs");
                (b, program, profile)
            })
            .collect();
        let refs: Vec<(&asip_ir::Program, &asip_sim::Profile)> =
            compiled.iter().map(|(_, p, pr)| (p, pr)).collect();
        let design = AsipDesigner::new(DesignConstraints::default()).design_for_suite(&refs);
        assert!(!design.is_empty());
        let mut best = 1.0_f64;
        for (b, program, _) in &compiled {
            let eval = evaluate(program, &design, &b.dataset()).expect("evaluates");
            assert!(eval.speedup >= 1.0, "{}: slowdown", b.name);
            best = best.max(eval.speedup);
        }
        assert!(best > 1.1, "the shared design should really help someone");
    }

    #[test]
    fn bigger_budget_never_slower() {
        let benches = asip_benchmarks::registry();
        let b = benches.find("feowf").expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("runs");
        let small = AsipDesigner::new(DesignConstraints {
            area_budget: 400.0,
            ..DesignConstraints::default()
        })
        .design_for(&program, &profile);
        let large = AsipDesigner::new(DesignConstraints {
            area_budget: 20_000.0,
            max_extensions: 8,
            ..DesignConstraints::default()
        })
        .design_for(&program, &profile);
        let es = evaluate(&program, &small, &b.dataset()).expect("evaluates");
        let el = evaluate(&program, &large, &b.dataset()).expect("evaluates");
        assert!(el.speedup >= es.speedup);
        assert!(large.extension_area >= small.extension_area);
    }
}
