//! Functional-unit area/delay estimates and the chained-unit model.
//!
//! Numbers follow the flavor of the high-level-synthesis literature the
//! paper cites (Gajski, Dutt, Wu, Lin — *High-Level Synthesis*, 1992):
//! a ripple-carry-class adder is the area unit of account, multipliers
//! are an order of magnitude larger, and float units larger still.
//! Absolute values only need to be *relatively* sensible: the designer
//! optimizes benefit per area, and the ablation benches vary the budget.

use crate::extension::IsaExtension;
use asip_ir::OpClass;
use serde::{Deserialize, Serialize};

/// Area estimate of a functional unit for one op class, in
/// equivalent-gate units.
pub fn fu_area(class: OpClass) -> f64 {
    use OpClass::*;
    match class {
        Add | Sub => 120.0,
        Mul => 1100.0,
        Div => 2400.0,
        Shift => 90.0,
        Logic => 40.0,
        Compare => 80.0,
        Load | Store => 200.0, // address port + alignment network
        FAdd | FSub => 450.0,
        FMul => 1600.0,
        FDiv => 3200.0,
        FLoad | FStore => 220.0,
        Move => 20.0,
        Convert => 150.0,
        Math => 4000.0, // a CORDIC/poly evaluator, if anyone asked
        Branch => 60.0,
        Chained => 0.0, // never a component of another chain
    }
}

/// Propagation delay of a functional unit, in nanoseconds (mid-90s
/// standard-cell flavor).
pub fn fu_delay_ns(class: OpClass) -> f64 {
    use OpClass::*;
    match class {
        Add | Sub => 4.0,
        Mul => 12.0,
        Div => 30.0,
        Shift => 2.0,
        Logic => 1.0,
        Compare => 3.0,
        Load | Store => 8.0,
        FAdd | FSub => 14.0,
        FMul => 20.0,
        FDiv => 40.0,
        FLoad | FStore => 8.0,
        Move => 0.5,
        Convert => 6.0,
        Math => 60.0,
        Branch => 2.0,
        Chained => 0.0,
    }
}

/// Datapath estimate for one chained instruction: the member functional
/// units wired output-to-input, with no register-file round trips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainedUnit {
    /// The fused op classes, head first.
    pub classes: Vec<OpClass>,
}

impl ChainedUnit {
    /// A chained unit for a signature's classes.
    pub fn new(classes: Vec<OpClass>) -> Self {
        ChainedUnit { classes }
    }

    /// Total area: dedicated member units plus forwarding wiring
    /// (estimated at 5% of member area per internal hop).
    pub fn area(&self) -> f64 {
        let members: f64 = self.classes.iter().map(|&c| fu_area(c)).sum();
        let hops = self.classes.len().saturating_sub(1) as f64;
        members * (1.0 + 0.05 * hops)
    }

    /// Combinational delay: member delays in series.
    pub fn delay_ns(&self) -> f64 {
        self.classes.iter().map(|&c| fu_delay_ns(c)).sum()
    }

    /// Whether the chain closes timing in a single cycle of the given
    /// clock period.
    pub fn fits_clock(&self, clock_ns: f64) -> bool {
        self.delay_ns() <= clock_ns
    }
}

impl From<&IsaExtension> for ChainedUnit {
    fn from(ext: &IsaExtension) -> Self {
        ChainedUnit::new(ext.signature.classes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_dwarfs_adder() {
        assert!(fu_area(OpClass::Mul) > 5.0 * fu_area(OpClass::Add));
        assert!(fu_area(OpClass::FMul) > fu_area(OpClass::Mul));
        assert!(fu_delay_ns(OpClass::Div) > fu_delay_ns(OpClass::Add));
    }

    #[test]
    fn chained_unit_area_includes_forwarding() {
        let mac = ChainedUnit::new(vec![OpClass::Mul, OpClass::Add]);
        let members = fu_area(OpClass::Mul) + fu_area(OpClass::Add);
        assert!(mac.area() > members);
        assert!(mac.area() < members * 1.2);
    }

    #[test]
    fn delay_accumulates_along_chain() {
        let mac = ChainedUnit::new(vec![OpClass::Mul, OpClass::Add]);
        assert!((mac.delay_ns() - 16.0).abs() < 1e-9);
        assert!(mac.fits_clock(20.0));
        assert!(!mac.fits_clock(10.0));
        let long = ChainedUnit::new(vec![OpClass::Mul; 5]);
        assert!(long.delay_ns() > mac.delay_ns());
    }

    #[test]
    fn every_class_has_costs() {
        for &c in OpClass::all() {
            assert!(fu_area(c) >= 0.0);
            assert!(fu_delay_ns(c) >= 0.0);
        }
    }
}
