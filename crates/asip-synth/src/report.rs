//! Human-readable design reports: the datapath summary a designer would
//! file with the ASIP specification.

use crate::cost::ChainedUnit;
use crate::extension::AsipDesign;
use std::fmt;

/// A formatted summary of one [`AsipDesign`].
///
/// ```
/// use asip_chains::Signature;
/// use asip_synth::{AsipDesign, IsaExtension};
/// use asip_synth::report::DesignReport;
///
/// let design = AsipDesign {
///     extensions: vec![IsaExtension {
///         id: 0,
///         signature: "multiply-add".parse::<Signature>()?,
///         area: 1286.0,
///         expected_benefit: 9.1,
///     }],
///     extension_area: 1286.0,
/// };
/// let text = DesignReport::new(&design, 40.0).to_string();
/// assert!(text.contains("multiply-add"));
/// assert!(text.contains("chained.0"));
/// # Ok::<(), asip_chains::signature::ParseSignatureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesignReport<'a> {
    design: &'a AsipDesign,
    clock_ns: f64,
}

impl<'a> DesignReport<'a> {
    /// Build a report for a design at the given clock period.
    pub fn new(design: &'a AsipDesign, clock_ns: f64) -> Self {
        DesignReport { design, clock_ns }
    }

    /// Slack (ns) of the slowest extension against the clock, or `None`
    /// for an empty design.
    pub fn worst_slack_ns(&self) -> Option<f64> {
        self.design
            .extensions
            .iter()
            .map(|e| self.clock_ns - ChainedUnit::from(e).delay_ns())
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Total expected benefit (sum of selected frequencies, percent).
    pub fn total_benefit(&self) -> f64 {
        self.design
            .extensions
            .iter()
            .map(|e| e.expected_benefit)
            .sum()
    }
}

impl fmt::Display for DesignReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ASIP extension set: {} chained instruction(s), {:.0} gate-equivalents",
            self.design.len(),
            self.design.extension_area
        )?;
        writeln!(
            f,
            "{:10} {:28} {:>9} {:>10} {:>10} {:>9}",
            "opcode", "fused sequence", "area", "delay", "slack", "benefit"
        )?;
        for ext in &self.design.extensions {
            let unit = ChainedUnit::from(ext);
            writeln!(
                f,
                "chained.{:<2} {:28} {:>9.0} {:>8.1}ns {:>8.1}ns {:>8.2}%",
                ext.id,
                ext.signature.to_string(),
                ext.area,
                unit.delay_ns(),
                self.clock_ns - unit.delay_ns(),
                ext.expected_benefit
            )?;
        }
        if let Some(slack) = self.worst_slack_ns() {
            writeln!(
                f,
                "worst slack {slack:.1} ns at a {:.0} ns clock; total expected benefit {:.2}%",
                self.clock_ns,
                self.total_benefit()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::IsaExtension;
    use asip_chains::Signature;

    fn design() -> AsipDesign {
        AsipDesign {
            extensions: vec![
                IsaExtension {
                    id: 0,
                    signature: "multiply-add".parse::<Signature>().expect("ok"),
                    area: 1286.0,
                    expected_benefit: 9.1,
                },
                IsaExtension {
                    id: 1,
                    signature: "add-compare".parse::<Signature>().expect("ok"),
                    area: 210.0,
                    expected_benefit: 8.7,
                },
            ],
            extension_area: 1496.0,
        }
    }

    #[test]
    fn report_lists_every_extension() {
        let d = design();
        let text = DesignReport::new(&d, 40.0).to_string();
        assert!(text.contains("chained.0"));
        assert!(text.contains("chained.1"));
        assert!(text.contains("multiply-add"));
        assert!(text.contains("add-compare"));
        assert!(text.contains("2 chained instruction(s)"));
    }

    #[test]
    fn slack_and_benefit() {
        let d = design();
        let r = DesignReport::new(&d, 40.0);
        // mac delay = 12 + 4 = 16ns -> slack 24; add-compare = 4+3 -> 33
        let slack = r.worst_slack_ns().expect("nonempty");
        assert!((slack - 24.0).abs() < 1e-9);
        assert!((r.total_benefit() - 17.8).abs() < 1e-9);
    }

    #[test]
    fn empty_design_has_no_slack() {
        let d = AsipDesign::default();
        let r = DesignReport::new(&d, 40.0);
        assert!(r.worst_slack_ns().is_none());
        assert_eq!(r.total_benefit(), 0.0);
        let text = r.to_string();
        assert!(text.contains("0 chained instruction(s)"));
    }
}
