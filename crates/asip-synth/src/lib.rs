//! # asip-synth
//!
//! The ASIP design stage of the paper's Figure 1: consume compiler
//! feedback (detected chainable sequences), choose which sequences to
//! implement as *chained instructions* under area and clock constraints,
//! rewrite the 3-address code to use them, and measure the resulting
//! speedup on the profiling simulator.
//!
//! The paper describes this stage but evaluates only the detection side;
//! this crate closes the loop so downstream users can run complete
//! design-space explorations:
//!
//! 1. [`cost`] — a Gajski-style functional-unit area/delay model and the
//!    [`ChainedUnit`] datapath estimate;
//! 2. [`select`] — [`AsipDesigner`]: selection of ISA extensions under
//!    [`DesignConstraints`] (greedy benefit-per-area, improved by the
//!    frontier search wherever it strictly wins) — and [`frontier`],
//!    the incremental pareto-frontier design-space search: one
//!    branch-and-bound per `(level, clock)` group answers every
//!    `(area, opcode)` budget of a constraint grid at once
//!    ([`AsipDesigner::explore_design_space`] → [`DesignSpace`]);
//! 3. [`rewrite`] — a matcher that replaces fusable runs in the IR with
//!    [`asip_ir::InstKind::Chained`] super-instructions (semantics
//!    preserved; the simulator executes them in one cycle);
//! 4. [`evaluate`](fn@evaluate) — before/after cycle counts and speedups.
//!
//! ## Example
//!
//! ```
//! use asip_synth::{AsipDesigner, DesignConstraints};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let benches = asip_benchmarks::registry();
//! let bench = benches.find("sewha").expect("built-in");
//! let program = bench.compile()?;
//! let profile = bench.profile(&program)?;
//!
//! let design = AsipDesigner::new(DesignConstraints::default())
//!     .design_for(&program, &profile);
//! let eval = asip_synth::evaluate::evaluate(&program, &design, &bench.dataset())?;
//! assert!(eval.speedup >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod evaluate;
pub mod extension;
pub mod frontier;
pub mod report;
pub mod rewrite;
pub mod select;

pub use cost::{fu_area, fu_delay_ns, ChainedUnit};
pub use evaluate::{
    evaluate, evaluate_prepared, evaluate_with_engine, prepare, Evaluation, PreparedDesign,
};
pub use extension::{AsipDesign, IsaExtension};
pub use frontier::{DesignSpace, LevelFeedback, ParetoPoint, SearchStats};
pub use report::DesignReport;
pub use rewrite::Rewriter;
pub use select::{AsipDesigner, DesignConstraints};
