//! ISA extensions and complete designs.

use asip_chains::Signature;
use serde::{Deserialize, Serialize};

/// One chained-instruction extension chosen for the ASIP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsaExtension {
    /// Extension id (the `ext` field of [`asip_ir::InstKind::Chained`]).
    pub id: u32,
    /// The fused sequence.
    pub signature: Signature,
    /// Estimated area of the chained unit (gate equivalents).
    pub area: f64,
    /// Detected dynamic frequency that motivated the selection (percent).
    pub expected_benefit: f64,
}

/// A complete extension set for one ASIP.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AsipDesign {
    /// Chosen extensions, in selection order.
    pub extensions: Vec<IsaExtension>,
    /// Area consumed by the extensions.
    pub extension_area: f64,
}

impl AsipDesign {
    /// Find an extension by signature.
    pub fn find(&self, signature: &Signature) -> Option<&IsaExtension> {
        self.extensions.iter().find(|e| &e.signature == signature)
    }

    /// Number of extensions.
    pub fn len(&self) -> usize {
        self.extensions.len()
    }

    /// True if no extension was selected.
    pub fn is_empty(&self) -> bool {
        self.extensions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_lookup() {
        let mac: Signature = "multiply-add".parse().expect("ok");
        let design = AsipDesign {
            extensions: vec![IsaExtension {
                id: 0,
                signature: mac.clone(),
                area: 1286.0,
                expected_benefit: 9.1,
            }],
            extension_area: 1286.0,
        };
        assert_eq!(design.len(), 1);
        assert!(!design.is_empty());
        assert!(design.find(&mac).is_some());
        assert!(design.find(&"add-add".parse().expect("ok")).is_none());
    }
}
