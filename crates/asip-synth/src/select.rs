//! Extension selection: the designer that turns compiler feedback into
//! an instruction-set extension under hardware constraints.

use crate::cost::ChainedUnit;
use crate::extension::{AsipDesign, IsaExtension};
use crate::rewrite;
use asip_chains::{CoverageAnalyzer, DetectorConfig, SequenceReport};
use asip_ir::Program;
use asip_opt::{OptLevel, Optimizer};
use asip_sim::Profile;
use serde::{Deserialize, Serialize};

/// Hardware constraints for extension selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Total area budget for chained units (gate equivalents).
    pub area_budget: f64,
    /// Clock period the chained unit must close in one cycle (ns).
    pub clock_ns: f64,
    /// Maximum number of extensions (opcode space).
    pub max_extensions: usize,
    /// Optimization level whose feedback drives selection.
    pub opt_level: OptLevel,
}

impl Default for DesignConstraints {
    fn default() -> Self {
        DesignConstraints {
            area_budget: 6000.0,
            clock_ns: 40.0,
            max_extensions: 4,
            opt_level: OptLevel::Pipelined,
        }
    }
}

/// Greedy benefit-per-area extension selection from compiler feedback.
#[derive(Debug, Clone, Copy)]
pub struct AsipDesigner {
    constraints: DesignConstraints,
    detector: DetectorConfig,
}

impl AsipDesigner {
    /// A designer with the given constraints and default detection.
    pub fn new(constraints: DesignConstraints) -> Self {
        AsipDesigner {
            constraints,
            detector: DetectorConfig::default(),
        }
    }

    /// Override the detector configuration.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// The constraints in use.
    pub fn constraints(&self) -> &DesignConstraints {
        &self.constraints
    }

    /// Run the full feedback loop for one program: optimize, run the
    /// iterative coverage analysis, then select extensions.
    ///
    /// Candidates whose signature never statically matches a fusable run
    /// of the program are dropped before selection — the coverage
    /// analysis reports *potential* chains (post-scheduling), and there
    /// is no point spending silicon on a chain the rewriter can never
    /// instantiate in this code.
    pub fn design_for(&self, program: &Program, profile: &Profile) -> AsipDesign {
        let graph = Optimizer::new(self.constraints.opt_level).run(program, profile);
        let coverage = CoverageAnalyzer::new(self.detector)
            .with_floor(1.0)
            .with_max_sequences(16)
            .analyze(&graph);
        let report = SequenceReport::from_parts(
            graph.name.clone(),
            coverage
                .entries
                .iter()
                .filter(|e| {
                    !rewrite::is_fusable_signature(&e.signature)
                        || crate::rewrite::Rewriter::count_static_matches(program, &e.signature) > 0
                })
                .map(|e| {
                    (
                        e.signature.clone(),
                        asip_chains::SeqStats {
                            frequency: e.frequency,
                            occurrences: 0,
                        },
                    )
                })
                .collect(),
            graph.total_profile_ops,
        );
        self.select(&report)
    }

    /// Design one extension set for a whole application suite — the
    /// paper's actual scenario ("an ASIP … tuned to a suite of
    /// applications"). Each program's coverage study runs separately;
    /// the per-benchmark results are averaged (every application counts
    /// equally) and one extension set is selected. A candidate must
    /// statically match in at least one program.
    pub fn design_for_suite(&self, programs: &[(&Program, &Profile)]) -> AsipDesign {
        assert!(!programs.is_empty(), "suite must not be empty");
        let reports: Vec<SequenceReport> = programs
            .iter()
            .map(|(program, profile)| {
                let graph = Optimizer::new(self.constraints.opt_level).run(program, profile);
                let coverage = CoverageAnalyzer::new(self.detector)
                    .with_floor(1.0)
                    .with_max_sequences(16)
                    .analyze(&graph);
                SequenceReport::from_parts(
                    graph.name.clone(),
                    coverage
                        .entries
                        .iter()
                        .map(|e| {
                            (
                                e.signature.clone(),
                                asip_chains::SeqStats {
                                    frequency: e.frequency,
                                    occurrences: 0,
                                },
                            )
                        })
                        .collect(),
                    graph.total_profile_ops,
                )
            })
            .collect();
        let combined = asip_chains::combine(&reports);
        let matchable = SequenceReport::from_parts(
            combined.name.clone(),
            combined
                .entries()
                .iter()
                .filter(|(sig, _)| {
                    !rewrite::is_fusable_signature(sig)
                        || programs.iter().any(|(program, _)| {
                            crate::rewrite::Rewriter::count_static_matches(program, sig) > 0
                        })
                })
                .cloned()
                .collect(),
            combined.total_profile_ops,
        );
        self.select(&matchable)
    }

    /// Select extensions from an existing (possibly suite-combined)
    /// sequence report.
    ///
    /// Candidates must be implementable by the rewriter (pure arithmetic
    /// chains) and close timing; selection is greedy by
    /// benefit-per-area until the budget, opcode space, or candidate
    /// list runs out.
    pub fn select(&self, report: &SequenceReport) -> AsipDesign {
        let mut candidates: Vec<(f64, f64, &asip_chains::Signature)> = report
            .entries()
            .iter()
            .filter(|(sig, _)| rewrite::is_fusable_signature(sig))
            .filter_map(|(sig, stats)| {
                let unit = ChainedUnit::new(sig.classes().to_vec());
                if !unit.fits_clock(self.constraints.clock_ns) {
                    return None;
                }
                Some((stats.frequency, unit.area(), sig))
            })
            .collect();
        // benefit per area, descending
        candidates.sort_by(|a, b| (b.0 / b.1).partial_cmp(&(a.0 / a.1)).expect("finite costs"));

        let mut design = AsipDesign::default();
        for (benefit, area, sig) in candidates {
            if design.len() >= self.constraints.max_extensions {
                break;
            }
            if design.extension_area + area > self.constraints.area_budget {
                continue;
            }
            design.extensions.push(IsaExtension {
                id: design.extensions.len() as u32,
                signature: (*sig).clone(),
                area,
                expected_benefit: benefit,
            });
            design.extension_area += area;
        }
        design
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_chains::{SeqStats, Signature};

    fn report(entries: Vec<(&str, f64)>) -> SequenceReport {
        SequenceReport::from_parts(
            "t".into(),
            entries
                .into_iter()
                .map(|(s, f)| {
                    (
                        s.parse::<Signature>().expect("ok"),
                        SeqStats {
                            frequency: f,
                            occurrences: 1,
                        },
                    )
                })
                .collect(),
            1000,
        )
    }

    #[test]
    fn selects_high_benefit_fusable_sequences() {
        let r = report(vec![
            ("multiply-add", 20.0),
            ("add-add", 10.0),
            ("add-compare", 5.0),
        ]);
        let design = AsipDesigner::new(DesignConstraints::default()).select(&r);
        assert!(!design.is_empty());
        assert!(design.find(&"multiply-add".parse().expect("ok")).is_some());
        // add-add has better benefit/area than multiply-add (adders are cheap)
        assert_eq!(design.extensions[0].signature.to_string(), "add-add");
    }

    #[test]
    fn respects_area_budget() {
        let r = report(vec![("multiply-add", 20.0), ("add-add", 10.0)]);
        let tight = DesignConstraints {
            area_budget: 300.0, // fits add-add only
            ..DesignConstraints::default()
        };
        let design = AsipDesigner::new(tight).select(&r);
        assert_eq!(design.len(), 1);
        assert_eq!(design.extensions[0].signature.to_string(), "add-add");
        assert!(design.extension_area <= 300.0);
    }

    #[test]
    fn respects_opcode_budget_and_clock() {
        let r = report(vec![
            ("add-add", 10.0),
            ("add-subtract", 9.0),
            ("add-logic", 8.0),
            ("add-shift", 7.0),
            ("shift-add", 6.0),
        ]);
        let cons = DesignConstraints {
            max_extensions: 2,
            ..DesignConstraints::default()
        };
        let design = AsipDesigner::new(cons).select(&r);
        assert_eq!(design.len(), 2);

        // a divide chain cannot close a 5 ns clock
        let r = report(vec![("divide-add", 50.0)]);
        let fast = DesignConstraints {
            clock_ns: 5.0,
            ..DesignConstraints::default()
        };
        assert!(AsipDesigner::new(fast).select(&r).is_empty());
    }

    #[test]
    fn skips_unfusable_signatures() {
        // memory ops cannot be fused by the rewriter
        let r = report(vec![("load-multiply", 30.0), ("add-store", 25.0)]);
        let design = AsipDesigner::new(DesignConstraints::default()).select(&r);
        assert!(design.is_empty());
    }
}
