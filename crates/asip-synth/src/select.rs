//! Extension selection: the designer that turns compiler feedback into
//! an instruction-set extension under hardware constraints.

use crate::extension::AsipDesign;
use crate::frontier;
use crate::rewrite;
use asip_chains::{CoverageAnalyzer, DetectorConfig, SeqStats, SequenceReport};
use asip_ir::Program;
use asip_opt::{OptConfig, OptLevel, Optimizer, ScheduleGraph};
use asip_sim::Profile;
use serde::{Deserialize, Serialize};

/// Hardware constraints for extension selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Total area budget for chained units (gate equivalents).
    pub area_budget: f64,
    /// Clock period the chained unit must close in one cycle (ns).
    pub clock_ns: f64,
    /// Maximum number of extensions (opcode space).
    pub max_extensions: usize,
    /// Optimization level whose feedback drives selection.
    pub opt_level: OptLevel,
}

impl Default for DesignConstraints {
    fn default() -> Self {
        DesignConstraints {
            area_budget: 6000.0,
            clock_ns: 40.0,
            max_extensions: 4,
            opt_level: OptLevel::Pipelined,
        }
    }
}

/// Greedy benefit-per-area extension selection from compiler feedback.
///
/// The designer is split into a *pure selection core* and *convenience
/// wrappers*. The core methods ([`AsipDesigner::design_from_report`],
/// [`AsipDesigner::design_from_schedule`],
/// [`AsipDesigner::design_from_schedules`]) consume precomputed
/// compiler feedback and never run the optimizer, so a session that
/// already holds a cached [`ScheduleGraph`] pays nothing extra for the
/// design stage — and the schedule the designer sees is byte-identical
/// to the one the analyze stage reported. The wrappers
/// ([`AsipDesigner::design_for`], [`AsipDesigner::design_for_suite`])
/// run the optimizer themselves, honoring the designer's
/// [`OptConfig`], for callers without a session.
#[derive(Debug, Clone, Copy)]
pub struct AsipDesigner {
    constraints: DesignConstraints,
    detector: DetectorConfig,
    opt_config: OptConfig,
}

impl AsipDesigner {
    /// A designer with the given constraints, default detection, and the
    /// default optimizer configuration.
    pub fn new(constraints: DesignConstraints) -> Self {
        AsipDesigner {
            constraints,
            detector: DetectorConfig::default(),
            opt_config: OptConfig::default(),
        }
    }

    /// Override the detector configuration.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Override the optimizer configuration used by the
    /// [`AsipDesigner::design_for`] / [`AsipDesigner::design_for_suite`]
    /// wrappers (the `design_from_*` core never runs the optimizer).
    pub fn with_opt_config(mut self, config: OptConfig) -> Self {
        self.opt_config = config;
        self
    }

    /// The constraints in use.
    pub fn constraints(&self) -> &DesignConstraints {
        &self.constraints
    }

    /// The optimizer configuration the wrappers schedule with.
    pub fn opt_config(&self) -> OptConfig {
        self.opt_config
    }

    /// Run the iterative coverage study on one precomputed schedule and
    /// aggregate it into a sequence report, preserving both the dynamic
    /// frequency and the selected occurrence count per signature.
    pub(crate) fn coverage_report(&self, graph: &ScheduleGraph) -> SequenceReport {
        let coverage = CoverageAnalyzer::new(self.detector)
            .with_floor(1.0)
            .with_max_sequences(16)
            .analyze(graph);
        SequenceReport::from_parts(
            graph.name.clone(),
            coverage
                .entries
                .iter()
                .map(|e| {
                    (
                        e.signature.clone(),
                        SeqStats {
                            frequency: e.frequency,
                            occurrences: e.occurrences,
                        },
                    )
                })
                .collect(),
            graph.total_profile_ops,
        )
    }

    /// Select extensions for one program from its precomputed schedule.
    ///
    /// Candidates whose signature never statically matches a fusable run
    /// of the program are dropped before selection — the coverage
    /// analysis reports *potential* chains (post-scheduling), and there
    /// is no point spending silicon on a chain the rewriter can never
    /// instantiate in this code.
    pub fn design_from_schedule(&self, graph: &ScheduleGraph, program: &Program) -> AsipDesign {
        let report = self.coverage_report(graph);
        self.design_from_report(&retain_matchable(&report, &[program]))
    }

    /// Select one extension set for a whole suite from precomputed
    /// schedules — the paper's actual scenario ("an ASIP … tuned to a
    /// suite of applications"). Each schedule's coverage study runs
    /// separately; the per-benchmark results are averaged (every
    /// application counts equally) and one extension set is selected. A
    /// candidate must statically match in at least one program.
    ///
    /// # Panics
    ///
    /// Panics if `suite` is empty — there is nothing to design for.
    pub fn design_from_schedules(&self, suite: &[(&ScheduleGraph, &Program)]) -> AsipDesign {
        assert!(!suite.is_empty(), "suite must not be empty");
        let reports: Vec<SequenceReport> = suite
            .iter()
            .map(|(graph, _)| self.coverage_report(graph))
            .collect();
        let combined = asip_chains::combine(&reports);
        let programs: Vec<&Program> = suite.iter().map(|(_, program)| *program).collect();
        self.design_from_report(&retain_matchable(&combined, &programs))
    }

    /// Convenience wrapper: run the full feedback loop for one program —
    /// optimize at the designer's level and [`OptConfig`], then
    /// [`AsipDesigner::design_from_schedule`].
    pub fn design_for(&self, program: &Program, profile: &Profile) -> AsipDesign {
        let graph = Optimizer::new(self.constraints.opt_level)
            .with_config(self.opt_config)
            .run(program, profile);
        self.design_from_schedule(&graph, program)
    }

    /// Convenience wrapper: optimize every suite member, then
    /// [`AsipDesigner::design_from_schedules`].
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn design_for_suite(&self, programs: &[(&Program, &Profile)]) -> AsipDesign {
        let graphs: Vec<ScheduleGraph> = programs
            .iter()
            .map(|(program, profile)| {
                Optimizer::new(self.constraints.opt_level)
                    .with_config(self.opt_config)
                    .run(program, profile)
            })
            .collect();
        let suite: Vec<(&ScheduleGraph, &Program)> = graphs
            .iter()
            .zip(programs)
            .map(|(graph, (program, _))| (graph, *program))
            .collect();
        self.design_from_schedules(&suite)
    }

    /// Select extensions from an existing (possibly suite-combined)
    /// sequence report — the pure selection core.
    ///
    /// Candidates must be implementable by the rewriter (pure arithmetic
    /// chains) and close timing. Selection runs the shared
    /// [`crate::frontier`] search seeded with the historical
    /// greedy benefit-per-area pick: the result is byte-identical to
    /// the greedy design unless the frontier found a set with strictly
    /// higher estimated benefit under the same constraints.
    pub fn design_from_report(&self, report: &SequenceReport) -> AsipDesign {
        let mut memo = frontier::MemoTable::default();
        let candidates = frontier::build_candidates(report, self.constraints.clock_ns, &mut memo);
        let greedy = frontier::greedy_indices(
            &candidates,
            self.constraints.area_budget,
            self.constraints.max_extensions,
        );
        let search = frontier::search_group(
            &candidates,
            self.constraints.area_budget,
            self.constraints.max_extensions,
            [greedy.clone()],
        );
        let greedy_benefit = frontier::benefit_of(&candidates, &greedy);
        let best = frontier::best_in(
            &search.front,
            self.constraints.area_budget,
            self.constraints.max_extensions,
        );
        match best {
            Some(p) if p.benefit > greedy_benefit + frontier::EPS => {
                frontier::build_design(&candidates, &p.chosen)
            }
            _ => frontier::build_design(&candidates, &greedy),
        }
    }

    /// Alias for [`AsipDesigner::design_from_report`], kept for callers
    /// written against the pre-split API.
    pub fn select(&self, report: &SequenceReport) -> AsipDesign {
        self.design_from_report(report)
    }
}

/// Drop fusable candidates that never statically match any of
/// `programs` — the rewriter could not instantiate them, so spending
/// area on them is pure waste. Unfusable signatures pass through (the
/// selection core filters them anyway).
fn retain_matchable(report: &SequenceReport, programs: &[&Program]) -> SequenceReport {
    SequenceReport::from_parts(
        report.name.clone(),
        report
            .entries()
            .iter()
            .filter(|(sig, _)| {
                !rewrite::is_fusable_signature(sig)
                    || programs
                        .iter()
                        .any(|program| rewrite::Rewriter::count_static_matches(program, sig) > 0)
            })
            .cloned()
            .collect(),
        report.total_profile_ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_chains::{SeqStats, Signature};

    fn report(entries: Vec<(&str, f64)>) -> SequenceReport {
        SequenceReport::from_parts(
            "t".into(),
            entries
                .into_iter()
                .map(|(s, f)| {
                    (
                        s.parse::<Signature>().expect("ok"),
                        SeqStats {
                            frequency: f,
                            occurrences: 1,
                        },
                    )
                })
                .collect(),
            1000,
        )
    }

    #[test]
    fn selects_high_benefit_fusable_sequences() {
        let r = report(vec![
            ("multiply-add", 20.0),
            ("add-add", 10.0),
            ("add-compare", 5.0),
        ]);
        let design = AsipDesigner::new(DesignConstraints::default()).select(&r);
        assert!(!design.is_empty());
        assert!(design.find(&"multiply-add".parse().expect("ok")).is_some());
        // add-add has better benefit/area than multiply-add (adders are cheap)
        assert_eq!(design.extensions[0].signature.to_string(), "add-add");
    }

    #[test]
    fn respects_area_budget() {
        let r = report(vec![("multiply-add", 20.0), ("add-add", 10.0)]);
        let tight = DesignConstraints {
            area_budget: 300.0, // fits add-add only
            ..DesignConstraints::default()
        };
        let design = AsipDesigner::new(tight).select(&r);
        assert_eq!(design.len(), 1);
        assert_eq!(design.extensions[0].signature.to_string(), "add-add");
        assert!(design.extension_area <= 300.0);
    }

    #[test]
    fn respects_opcode_budget_and_clock() {
        let r = report(vec![
            ("add-add", 10.0),
            ("add-subtract", 9.0),
            ("add-logic", 8.0),
            ("add-shift", 7.0),
            ("shift-add", 6.0),
        ]);
        let cons = DesignConstraints {
            max_extensions: 2,
            ..DesignConstraints::default()
        };
        let design = AsipDesigner::new(cons).select(&r);
        assert_eq!(design.len(), 2);

        // a divide chain cannot close a 5 ns clock
        let r = report(vec![("divide-add", 50.0)]);
        let fast = DesignConstraints {
            clock_ns: 5.0,
            ..DesignConstraints::default()
        };
        assert!(AsipDesigner::new(fast).select(&r).is_empty());
    }

    #[test]
    fn wrapper_agrees_with_schedule_core() {
        // design_for is exactly "optimize, then design_from_schedule":
        // a session holding the same schedule gets the same design
        let benches = asip_benchmarks::registry();
        let b = benches.find("sewha").expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("runs");
        let designer = AsipDesigner::new(DesignConstraints::default());
        let graph = Optimizer::new(designer.constraints().opt_level)
            .with_config(designer.opt_config())
            .run(&program, &profile);
        assert_eq!(
            designer.design_for(&program, &profile),
            designer.design_from_schedule(&graph, &program)
        );
    }

    #[test]
    fn wrapper_honors_opt_config() {
        // the headline bug: selection must follow the configured
        // schedule, not a silently re-derived default one
        let benches = asip_benchmarks::registry();
        let b = benches.find("sewha").expect("built-in");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("runs");
        let designer = AsipDesigner::new(DesignConstraints::default()).with_opt_config(OptConfig {
            unroll: 4,
            ..OptConfig::default()
        });
        let graph = Optimizer::new(designer.constraints().opt_level)
            .with_config(designer.opt_config())
            .run(&program, &profile);
        assert_eq!(
            designer.design_for(&program, &profile),
            designer.design_from_schedule(&graph, &program),
            "the wrapper must schedule with its own OptConfig"
        );
    }

    #[test]
    fn skips_unfusable_signatures() {
        // memory ops cannot be fused by the rewriter
        let r = report(vec![("load-multiply", 30.0), ("add-store", 25.0)]);
        let design = AsipDesigner::new(DesignConstraints::default()).select(&r);
        assert!(design.is_empty());
    }
}
