//! # asip-gen — deterministic seeded mini-C workload generator
//!
//! The reproduction's pipeline was only ever validated on the paper's
//! twelve Table-1 kernels. This crate generates *new* workloads — small
//! mini-C programs with controllable shape — so the detector, optimizer,
//! designer and both simulator back ends can be exercised on programs
//! the paper never tried (ROADMAP item 2).
//!
//! Programs are emitted as **text** through the same surface a
//! checked-in `.mc` file uses, so every generated program exercises the
//! full lexer→parser→sema→lower front end, not a synthetic IR builder.
//!
//! ## Determinism contract
//!
//! `generate(seed, config)` is a pure function of
//! `(seed, config, GENERATOR_VERSION)`: same inputs, same bytes, on
//! every platform. The generated corpus in `asip-benchmarks` pins
//! programs by seed + [`GENERATOR_VERSION`], so **any change that
//! alters generated output — the RNG stream, the emitter's choices, the
//! knob semantics — must bump [`GENERATOR_VERSION`]**, exactly like the
//! store's `FORMAT_VERSION` rule for persisted artifacts.
//!
//! ## Totality
//!
//! Every generated program compiles, terminates, and runs without
//! faults or NaNs (see `emit.rs` for the construction); differential
//! harnesses can therefore assert byte-identical engine-vs-reference
//! behavior over arbitrary seeds without filtering failures.

mod emit;
mod rng;

pub use rng::GenRng;

/// Version of the generator's output contract. Bump whenever the bytes
/// produced for a given `(seed, config)` can change; pinned-digest tests
/// in `asip-benchmarks` enforce this.
pub const GENERATOR_VERSION: u32 = 1;

/// Relative weights of the non-idiom statement classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Scalar arithmetic assignments (int or float per `float_share`).
    pub arith: u32,
    /// Array stores and load-combine gathers.
    pub memory: u32,
    /// Shift/mask/logic combinations.
    pub shift_logic: u32,
    /// `if`/`else` statements over comparisons.
    pub compare: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            arith: 5,
            memory: 3,
            shift_logic: 2,
            compare: 2,
        }
    }
}

impl OpMix {
    /// A mix dominated by data-parallel arithmetic (DSP-kernel shape).
    pub fn arith_heavy() -> Self {
        OpMix {
            arith: 8,
            memory: 2,
            shift_logic: 1,
            compare: 1,
        }
    }

    /// A mix dominated by memory traffic and control (codec shape).
    pub fn memory_heavy() -> Self {
        OpMix {
            arith: 2,
            memory: 6,
            shift_logic: 2,
            compare: 3,
        }
    }
}

/// The generator's explicit knobs. All fields are plain data; a config
/// is normalized (clamped to the supported envelope) before emission so
/// any value is safe to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Approximate number of generated body statements.
    pub statements: usize,
    /// Maximum `for`-nest depth (0 = straight-line, capped at 3).
    pub loop_depth: usize,
    /// Number of top-level loop nests (ignored when `loop_depth` is 0).
    pub loop_count: usize,
    /// Number of int input arrays (1..=4).
    pub int_arrays: usize,
    /// Number of float input arrays (0..=2).
    pub float_arrays: usize,
    /// Elements per array; rounded up to a power of two in 8..=65536
    /// (indices are masked with `len - 1`).
    pub array_len: usize,
    /// Percent of statements that are float-typed (0..=100).
    pub float_share: u8,
    /// Percent of statements emitted as chainable idioms the extension
    /// detector should find — MAC, add-shift, guarded accumulate
    /// (0..=100).
    pub chain_density: u8,
    /// Relative statement-class weights.
    pub mix: OpMix,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig::mid()
    }
}

impl GenConfig {
    /// A small kernel: one shallow nest over short arrays (~10k dynamic
    /// ops). Fast enough for high-volume seed sweeps.
    pub fn small() -> Self {
        GenConfig {
            statements: 12,
            loop_depth: 1,
            loop_count: 1,
            int_arrays: 1,
            float_arrays: 1,
            array_len: 64,
            float_share: 30,
            chain_density: 25,
            mix: OpMix::default(),
        }
    }

    /// A mid-size kernel: two nests up to depth 2 (~100k dynamic ops).
    pub fn mid() -> Self {
        GenConfig {
            statements: 18,
            loop_depth: 2,
            loop_count: 2,
            int_arrays: 2,
            float_arrays: 1,
            array_len: 256,
            float_share: 30,
            chain_density: 25,
            mix: OpMix::default(),
        }
    }

    /// A large kernel: deeper nests over long arrays (~1M dynamic ops),
    /// comparable to the heaviest Table-1 entries.
    pub fn large() -> Self {
        GenConfig {
            statements: 24,
            loop_depth: 2,
            loop_count: 2,
            int_arrays: 2,
            float_arrays: 1,
            array_len: 1024,
            float_share: 30,
            chain_density: 25,
            mix: OpMix::default(),
        }
    }

    /// The config actually emitted: every knob clamped to the supported
    /// envelope. Emission always goes through this, so out-of-range
    /// configs are usable rather than a panic.
    pub fn normalized(mut self) -> Self {
        self.statements = self.statements.clamp(1, 256);
        self.loop_depth = self.loop_depth.min(3);
        self.loop_count = self.loop_count.clamp(1, 4);
        self.int_arrays = self.int_arrays.clamp(1, 4);
        self.float_arrays = self.float_arrays.min(2);
        self.array_len = self.array_len.clamp(8, 65_536).next_power_of_two();
        self.float_share = self.float_share.min(100);
        self.chain_density = self.chain_density.min(100);
        let m = &mut self.mix;
        if m.arith | m.memory | m.shift_logic | m.compare == 0 {
            *m = OpMix::default();
        }
        self
    }
}

/// Scalar element type of a generated input array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenTy {
    Int,
    Float,
}

/// One input array a generated program declares; a data set must bind
/// each of these (ints for [`GenTy::Int`], floats for [`GenTy::Float`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSpec {
    pub name: String,
    pub ty: GenTy,
    pub len: usize,
}

/// A generated workload: the mini-C source plus everything needed to
/// reproduce or bind it.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedProgram {
    /// Program name (not embedded in the source; the same bytes compile
    /// under any name).
    pub name: String,
    pub seed: u64,
    /// The *normalized* config the emitter used.
    pub config: GenConfig,
    /// Complete mini-C source text.
    pub source: String,
    /// Input arrays a data set must bind, in declaration order.
    pub inputs: Vec<InputSpec>,
}

impl GeneratedProgram {
    /// FNV-1a digest of the source bytes — the value pinned-corpus tests
    /// assert on. Stable across platforms.
    pub fn source_digest(&self) -> u64 {
        fnv1a_64(self.source.as_bytes())
    }

    /// Number of source lines (a cheap size proxy for corpus tables).
    pub fn line_count(&self) -> usize {
        self.source.lines().count()
    }
}

/// FNV-1a over a byte string; the same construction the store's stable
/// hasher uses, duplicated here so the generator stays dependency-free.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generate a program named `gen-<seed-hex>` — see [`generate_named`].
pub fn generate(seed: u64, config: &GenConfig) -> GeneratedProgram {
    generate_named(format!("gen-{seed:016x}"), seed, config)
}

/// Generate the program determined by `(seed, config)` under the given
/// name. Pure: identical inputs produce identical bytes on every
/// platform, for this [`GENERATOR_VERSION`].
pub fn generate_named(name: impl Into<String>, seed: u64, config: &GenConfig) -> GeneratedProgram {
    let config = config.normalized();
    let (source, inputs) = emit::Emitter::new(seed, config).emit(seed);
    GeneratedProgram {
        name: name.into(),
        seed,
        config,
        source,
        inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_sim::{DataGen, DataSet, ReferenceSimulator};

    /// Bind a deterministic data set matching a program's input specs —
    /// the same shapes Table-1 uses (small ints, unit-interval floats).
    fn dataset(prog: &GeneratedProgram, data_seed: u64) -> DataSet {
        let mut gen = DataGen::new(data_seed);
        let mut data = DataSet::new();
        for input in &prog.inputs {
            match input.ty {
                GenTy::Int => {
                    data.bind_ints(input.name.clone(), gen.ints(input.len, -128, 127));
                }
                GenTy::Float => {
                    data.bind_floats(input.name.clone(), gen.floats(input.len, -1.0, 1.0));
                }
            }
        }
        data
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::mid();
        let a = generate(0xDEAD_BEEF, &cfg);
        let b = generate(0xDEAD_BEEF, &cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.source_digest(), b.source_digest());
    }

    #[test]
    fn seeds_and_configs_shape_the_output() {
        let cfg = GenConfig::mid();
        let a = generate(1, &cfg);
        let b = generate(2, &cfg);
        assert_ne!(a.source, b.source, "different seeds, different programs");
        let c = generate(1, &GenConfig::large());
        assert_ne!(a.source, c.source, "different configs, different programs");
    }

    #[test]
    fn out_of_range_configs_are_clamped_not_fatal() {
        let wild = GenConfig {
            statements: 0,
            loop_depth: 99,
            loop_count: 0,
            int_arrays: 0,
            float_arrays: 77,
            array_len: 3,
            float_share: 255,
            chain_density: 255,
            mix: OpMix {
                arith: 0,
                memory: 0,
                shift_logic: 0,
                compare: 0,
            },
        };
        let p = generate(5, &wild);
        assert_eq!(p.config.loop_depth, 3);
        assert_eq!(p.config.int_arrays, 1);
        assert_eq!(p.config.array_len, 8);
        assert!(p.config.array_len.is_power_of_two());
        asip_frontend::compile(&p.name, &p.source).expect("clamped config still compiles");
    }

    #[test]
    fn every_preset_compiles_and_runs_across_seeds() {
        // the generator's core promise: arbitrary seeds yield programs
        // that compile through the full front end and run to completion
        for cfg in [GenConfig::small(), GenConfig::mid(), GenConfig::large()] {
            for seed in 0..8u64 {
                let p = generate(seed * 7919 + 3, &cfg);
                let program = asip_frontend::compile(&p.name, &p.source)
                    .unwrap_or_else(|e| panic!("seed {seed} fails to compile: {e}\n{}", p.source));
                let data = dataset(&p, seed);
                let run = ReferenceSimulator::new(&program)
                    .run(&data)
                    .unwrap_or_else(|e| panic!("seed {seed} fails to run: {e:?}\n{}", p.source));
                assert!(run.profile.total_ops() > 0, "program does real work");
            }
        }
    }

    #[test]
    fn runs_are_deterministic_end_to_end() {
        let p = generate(42, &GenConfig::small());
        let program = asip_frontend::compile(&p.name, &p.source).expect("compiles");
        let a = ReferenceSimulator::new(&program)
            .run(&dataset(&p, 1))
            .expect("runs");
        let b = ReferenceSimulator::new(&program)
            .run(&dataset(&p, 1))
            .expect("runs");
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn knobs_move_the_shape() {
        let flat = generate(
            9,
            &GenConfig {
                loop_depth: 0,
                ..GenConfig::small()
            },
        );
        assert!(
            !flat.source.contains("for ("),
            "depth 0 emits straight-line code"
        );
        let int_only = generate(
            9,
            &GenConfig {
                float_share: 0,
                float_arrays: 0,
                ..GenConfig::small()
            },
        );
        assert!(
            !int_only.source.contains("float"),
            "int-only config emits no float declarations:\n{}",
            int_only.source
        );
        let chained = generate(
            9,
            &GenConfig {
                chain_density: 100,
                float_share: 0,
                float_arrays: 0,
                ..GenConfig::mid()
            },
        );
        assert!(
            chained.source.contains("* ") && chained.source.contains(">> "),
            "high chain density emits MAC / add-shift idioms"
        );
    }

    #[test]
    fn digest_is_pinned_to_the_fnv_construction() {
        // empty-input FNV offset basis; guards the digest function the
        // corpus pinning tests depend on
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
