//! The generator's own PRNG.
//!
//! The generator cannot use the workspace `rand` shim (or any external
//! stream): generated programs are *pinned* by `(seed, config,
//! GENERATOR_VERSION)`, so the byte stream behind every random choice is
//! part of the generator's versioned contract. SplitMix64 is tiny,
//! platform-independent, and fully specified here — any change to this
//! file that alters the stream is a generator behavior change and
//! requires a [`crate::GENERATOR_VERSION`] bump.

/// A SplitMix64 stream (Steele, Lea & Flood; the JDK's `SplittableRandom`
/// finalizer). Deterministic for a given seed on every platform.
#[derive(Debug, Clone)]
pub struct GenRng {
    state: u64,
}

impl GenRng {
    /// A stream seeded with `seed` (used as-is; SplitMix64's output
    /// function already scrambles low-entropy seeds).
    pub fn new(seed: u64) -> Self {
        GenRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-enough value in `0..n` (`n > 0`). Plain modulo: the tiny
    /// bias is irrelevant for program shaping, and the arithmetic is
    /// trivially stable across platforms.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform-enough value in `lo..hi` (`lo < hi`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// True with probability `percent`/100.
    pub fn percent(&mut self, percent: u8) -> bool {
        self.below(100) < percent as usize
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.below(choices.len())]
    }

    /// Weighted choice: returns the index of the selected weight
    /// (weights need not be normalized; at least one must be non-zero).
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        debug_assert!(total > 0, "at least one weight must be non-zero");
        let mut roll = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = GenRng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = GenRng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = GenRng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn the_stream_is_pinned() {
        // the first outputs of seed 0 are part of the versioned
        // contract: if this test fails, the generator's programs
        // changed and GENERATOR_VERSION must be bumped
        let mut r = GenRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn helpers_stay_in_range() {
        let mut r = GenRng::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
        let w = (0..1000)
            .map(|_| r.weighted(&[0, 5, 0, 1]))
            .collect::<Vec<_>>();
        assert!(w.iter().all(|&i| i == 1 || i == 3));
        assert!(w.contains(&1) && w.contains(&3));
    }
}
