//! Control-flow graph queries: successors, predecessors, orders, dominators.

use crate::program::Program;
use crate::types::BlockId;

/// Precomputed CFG adjacency and traversal orders for a [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists per block.
    succs: Vec<Vec<BlockId>>,
    /// Predecessor lists per block.
    preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// excluded).
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo`, or `usize::MAX` if unreachable.
    rpo_pos: Vec<usize>,
    entry: BlockId,
}

impl Cfg {
    /// Build the CFG for a program.
    pub fn new(program: &Program) -> Self {
        let n = program.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for block in &program.blocks {
            for s in block.successors() {
                succs[block.id.index()].push(s);
                preds[s.index()].push(block.id);
            }
        }
        // iterative postorder DFS
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack = vec![(program.entry, 0usize)];
        state[program.entry.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
            entry: program.entry,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successors of a block.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of a block.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder (entry first; unreachable excluded).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of a block in reverse postorder.
    pub fn rpo_position(&self, b: BlockId) -> Option<usize> {
        let p = self.rpo_pos[b.index()];
        (p != usize::MAX).then_some(p)
    }

    /// True if the block is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Number of blocks in the underlying program.
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }
}

/// Immediate-dominator tree, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over reverse postorder.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators from a CFG.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry().index()] = Some(cfg.entry());

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // walk up by RPO position
            loop {
                let pa = cfg.rpo_position(a).expect("reachable");
                let pb = cfg.rpo_position(b).expect("reachable");
                if pa == pb {
                    return a;
                }
                if pa > pb {
                    a = idom[a.index()].expect("processed");
                } else {
                    b = idom[b.index()].expect("processed");
                }
            }
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !cfg.is_reachable(p) || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::BinOp;
    use crate::types::{Operand, Ty};

    /// Diamond: entry -> {left, right} -> join -> exit(ret)
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new("diamond");
        let entry = b.entry_block();
        let left = b.new_block();
        let right = b.new_block();
        let join = b.new_block();
        let c = b.new_reg(Ty::Int);

        b.select_block(entry);
        b.binary_to(c, BinOp::CmpLt, Operand::imm_int(1), Operand::imm_int(2));
        b.branch(c.into(), left, right);
        b.select_block(left);
        b.jump(join);
        b.select_block(right);
        b.jump(join);
        b.select_block(join);
        b.ret(None);
        b.finish().expect("valid")
    }

    use crate::program::Program;

    #[test]
    fn adjacency() {
        let p = diamond();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2);
        assert!(cfg.preds(BlockId(0)).is_empty());
        assert_eq!(cfg.block_count(), 4);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let p = diamond();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 4);
        assert_eq!(cfg.rpo_position(BlockId(0)), Some(0));
        // join must come after both branches
        let join_pos = cfg.rpo_position(BlockId(3)).unwrap();
        assert!(join_pos > cfg.rpo_position(BlockId(1)).unwrap());
        assert!(join_pos > cfg.rpo_position(BlockId(2)).unwrap());
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = ProgramBuilder::new("unreach");
        let entry = b.entry_block();
        let dead = b.new_block();
        b.select_block(entry);
        b.ret(None);
        b.select_block(dead);
        b.ret(None);
        let p = b.finish().expect("valid");
        let cfg = Cfg::new(&p);
        assert!(cfg.is_reachable(entry));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 1);
        assert_eq!(cfg.rpo_position(dead), None);
    }

    #[test]
    fn dominators_of_diamond() {
        let p = diamond();
        let cfg = Cfg::new(&p);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        // join's idom is the entry, not either branch
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn dominators_of_loop() {
        // entry -> header; header -> body | exit; body -> header
        let mut b = ProgramBuilder::new("loop");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.jump(header);
        b.select_block(header);
        b.binary_to(c, BinOp::CmpLt, Operand::imm_int(0), Operand::imm_int(1));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        b.jump(header);
        b.select_block(exit);
        b.ret(None);
        let p = b.finish().expect("valid");
        let cfg = Cfg::new(&p);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, exit));
    }
}
