//! Ergonomic construction of IR programs.

use crate::block::Block;
use crate::error::Result;
use crate::inst::{Inst, InstKind};
use crate::op::{BinOp, UnOp};
use crate::program::{ArrayDecl, ArrayKind, Program};
use crate::types::{ArrayId, BlockId, InstId, Operand, Reg, Ty};

/// Builder for [`Program`]s.
///
/// Blocks are created first (so forward branches can name their targets),
/// then filled by selecting them. `finish` validates the result.
///
/// ```
/// use asip_ir::{BinOp, Operand, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new("demo");
/// let entry = b.entry_block();
/// b.select_block(entry);
/// let s = b.binary(BinOp::Add, Operand::imm_int(20), Operand::imm_int(22));
/// b.ret(Some(s.into()));
/// let program = b.finish().expect("well-formed");
/// assert_eq!(program.inst_count(), 2);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    current: Option<BlockId>,
    entry_created: bool,
}

impl ProgramBuilder {
    /// Start building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program {
                name: name.into(),
                reg_types: Vec::new(),
                arrays: Vec::new(),
                blocks: Vec::new(),
                entry: BlockId(0),
                next_inst_id: 0,
            },
            current: None,
            entry_created: false,
        }
    }

    /// Create (or return) the entry block.
    pub fn entry_block(&mut self) -> BlockId {
        if !self.entry_created {
            let id = self.new_block();
            self.program.entry = id;
            self.entry_created = true;
            id
        } else {
            self.program.entry
        }
    }

    /// Create a new empty block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.program.blocks.len() as u32);
        self.program.blocks.push(Block::new(id));
        id
    }

    /// Create a new labelled block (labels survive into dumps).
    pub fn new_labeled_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.new_block();
        self.program.blocks[id.index()].label = Some(label.into());
        id
    }

    /// Select the block subsequent instructions are appended to.
    pub fn select_block(&mut self, id: BlockId) {
        self.current = Some(id);
    }

    /// The currently selected block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been selected.
    pub fn current_block(&self) -> BlockId {
        self.current.expect("no block selected")
    }

    /// True if the selected block already has a terminator.
    pub fn current_is_terminated(&self) -> bool {
        self.current
            .map(|c| self.program.blocks[c.index()].terminator().is_some())
            .unwrap_or(false)
    }

    /// Allocate a fresh register.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        self.program.new_reg(ty)
    }

    /// Declare an input array.
    pub fn input_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> ArrayId {
        self.array(name, ty, len, ArrayKind::Input)
    }

    /// Declare an output array.
    pub fn output_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> ArrayId {
        self.array(name, ty, len, ArrayKind::Output)
    }

    /// Declare an internal (scratch) array.
    pub fn internal_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> ArrayId {
        self.array(name, ty, len, ArrayKind::Internal)
    }

    /// Declare an array with an explicit kind (element-indexed layout:
    /// `base = 0`, `elem_size = 1`).
    pub fn array(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        len: usize,
        kind: ArrayKind,
    ) -> ArrayId {
        self.array_with_layout(name, ty, len, kind, 0, 1)
    }

    /// Declare an array with an explicit address layout (see
    /// [`ArrayDecl`] for the addressing rule).
    pub fn array_with_layout(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        len: usize,
        kind: ArrayKind,
        base: i64,
        elem_size: i64,
    ) -> ArrayId {
        let id = ArrayId(self.program.arrays.len() as u32);
        self.program.arrays.push(ArrayDecl {
            name: name.into(),
            ty,
            len,
            kind,
            base,
            elem_size,
        });
        id
    }

    /// The declaration of a previously declared array.
    pub fn array_decl(&self, id: ArrayId) -> &ArrayDecl {
        &self.program.arrays[id.index()]
    }

    fn push(&mut self, kind: InstKind) -> InstId {
        let id = self.program.new_inst_id();
        let block = self.current.expect("no block selected");
        self.program.blocks[block.index()]
            .insts
            .push(Inst::new(id, kind));
        id
    }

    /// Emit `dst = op lhs, rhs` into a fresh destination register.
    pub fn binary(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.new_reg(op.result_ty());
        self.binary_to(dst, op, lhs, rhs);
        dst
    }

    /// Emit `dst = op lhs, rhs` into an existing register.
    pub fn binary_to(&mut self, dst: Reg, op: BinOp, lhs: Operand, rhs: Operand) -> InstId {
        self.push(InstKind::Binary { op, dst, lhs, rhs })
    }

    /// Emit `dst = op src` into a fresh destination register.
    pub fn unary(&mut self, op: UnOp, src: Operand) -> Reg {
        let src_ty = match src {
            Operand::Reg(r) => self.program.reg_ty(r),
            Operand::ImmInt(_) => Ty::Int,
            Operand::ImmFloat(_) => Ty::Float,
        };
        let dst = self.new_reg(op.result_ty(src_ty));
        self.unary_to(dst, op, src);
        dst
    }

    /// Emit `dst = op src` into an existing register.
    pub fn unary_to(&mut self, dst: Reg, op: UnOp, src: Operand) -> InstId {
        self.push(InstKind::Unary { op, dst, src })
    }

    /// Emit a move into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: Operand) -> InstId {
        self.unary_to(dst, UnOp::Mov, src)
    }

    /// Emit `dst = array[index]` into a fresh register.
    pub fn load(&mut self, array: ArrayId, index: Operand) -> Reg {
        let ty = self.program.arrays[array.index()].ty;
        let dst = self.new_reg(ty);
        self.load_to(dst, array, index);
        dst
    }

    /// Emit `dst = array[index]` into an existing register.
    pub fn load_to(&mut self, dst: Reg, array: ArrayId, index: Operand) -> InstId {
        self.push(InstKind::Load { dst, array, index })
    }

    /// Emit `array[index] = value`.
    pub fn store(&mut self, array: ArrayId, index: Operand, value: Operand) -> InstId {
        self.push(InstKind::Store {
            array,
            index,
            value,
        })
    }

    /// Emit a conditional branch terminator.
    pub fn branch(&mut self, cond: Operand, then_target: BlockId, else_target: BlockId) -> InstId {
        self.push(InstKind::Branch {
            cond,
            then_target,
            else_target,
        })
    }

    /// Emit an unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) -> InstId {
        self.push(InstKind::Jump { target })
    }

    /// Emit a return terminator.
    pub fn ret(&mut self, value: Option<Operand>) -> InstId {
        self.push(InstKind::Ret { value })
    }

    /// Finish and validate the program.
    ///
    /// # Errors
    ///
    /// Returns any violation found by [`Program::validate`].
    pub fn finish(self) -> Result<Program> {
        self.program.validate()?;
        Ok(self.program)
    }

    /// Finish without validating (for tests constructing invalid IR).
    pub fn finish_unchecked(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        // for (i = 0; i < 10; i++) acc += x[i] * x[i]
        let mut b = ProgramBuilder::new("sumsq");
        let x = b.input_array("x", Ty::Int, 10);
        let entry = b.entry_block();
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");

        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);

        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(header);

        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(10));
        b.branch(c.into(), body, exit);

        b.select_block(body);
        let v = b.load(x, i.into());
        let sq = b.binary(BinOp::Mul, v.into(), v.into());
        let nacc = b.binary(BinOp::Add, acc.into(), sq.into());
        b.mov_to(acc, nacc.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);

        b.select_block(exit);
        b.ret(Some(acc.into()));

        let p = b.finish().expect("valid loop program");
        assert_eq!(p.blocks().len(), 4);
        assert_eq!(p.block(header).successors(), vec![body, exit]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn entry_block_is_idempotent() {
        let mut b = ProgramBuilder::new("t");
        let e1 = b.entry_block();
        let e2 = b.entry_block();
        assert_eq!(e1, e2);
    }

    #[test]
    fn load_infers_element_type() {
        let mut b = ProgramBuilder::new("t");
        let a = b.input_array("f", Ty::Float, 4);
        let entry = b.entry_block();
        b.select_block(entry);
        let v = b.load(a, Operand::imm_int(0));
        b.ret(None);
        let p = b.finish().expect("valid");
        assert_eq!(p.reg_ty(v), Ty::Float);
    }

    #[test]
    fn unary_infers_result_type() {
        let mut b = ProgramBuilder::new("t");
        let entry = b.entry_block();
        b.select_block(entry);
        let f = b.unary(UnOp::IntToFloat, Operand::imm_int(3));
        let i = b.unary(UnOp::FloatToInt, f.into());
        b.ret(Some(i.into()));
        let p = b.finish().expect("valid");
        assert_eq!(p.reg_ty(f), Ty::Float);
        assert_eq!(p.reg_ty(i), Ty::Int);
    }

    #[test]
    fn terminated_query() {
        let mut b = ProgramBuilder::new("t");
        let entry = b.entry_block();
        b.select_block(entry);
        assert!(!b.current_is_terminated());
        b.ret(None);
        assert!(b.current_is_terminated());
    }
}
