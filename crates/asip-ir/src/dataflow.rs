//! Def/use summaries and live-variable analysis.

use crate::cfg::Cfg;
use crate::program::Program;
use crate::types::{BlockId, InstId, Reg};
use std::collections::{HashMap, HashSet};

/// Where a specific instruction lives: block and index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstLoc {
    /// Containing block.
    pub block: BlockId,
    /// Index within `block.insts`.
    pub index: usize,
}

/// Program-wide def/use index: which instructions define and use each
/// register, and where each instruction sits.
#[derive(Debug, Clone)]
pub struct DefUse {
    defs: HashMap<Reg, Vec<InstId>>,
    uses: HashMap<Reg, Vec<InstId>>,
    locs: HashMap<InstId, InstLoc>,
}

impl DefUse {
    /// Build the index for a program.
    pub fn new(program: &Program) -> Self {
        let mut defs: HashMap<Reg, Vec<InstId>> = HashMap::new();
        let mut uses: HashMap<Reg, Vec<InstId>> = HashMap::new();
        let mut locs = HashMap::new();
        for block in &program.blocks {
            for (index, inst) in block.insts.iter().enumerate() {
                locs.insert(
                    inst.id,
                    InstLoc {
                        block: block.id,
                        index,
                    },
                );
                if let Some(d) = inst.dst() {
                    defs.entry(d).or_default().push(inst.id);
                }
                for u in inst.uses() {
                    uses.entry(u).or_default().push(inst.id);
                }
            }
        }
        DefUse { defs, uses, locs }
    }

    /// Instructions defining a register.
    pub fn defs_of(&self, r: Reg) -> &[InstId] {
        self.defs.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Instructions using a register.
    pub fn uses_of(&self, r: Reg) -> &[InstId] {
        self.uses.get(&r).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Location of an instruction.
    pub fn loc(&self, id: InstId) -> Option<InstLoc> {
        self.locs.get(&id).copied()
    }

    /// True if `r` has exactly one static definition.
    pub fn is_single_def(&self, r: Reg) -> bool {
        self.defs_of(r).len() == 1
    }
}

/// Classic backward live-variable analysis at block granularity.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Compute liveness for a program.
    pub fn new(program: &Program, cfg: &Cfg) -> Self {
        let n = program.blocks.len();
        // gen = upward-exposed uses, kill = defs
        let mut gen = vec![HashSet::new(); n];
        let mut kill = vec![HashSet::new(); n];
        for block in &program.blocks {
            let bi = block.id.index();
            for inst in &block.insts {
                for u in inst.uses() {
                    if !kill[bi].contains(&u) {
                        gen[bi].insert(u);
                    }
                }
                if let Some(d) = inst.dst() {
                    kill[bi].insert(d);
                }
            }
        }
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // iterate in postorder (reverse RPO) for fast convergence
            for &b in cfg.rpo().iter().rev() {
                let bi = b.index();
                let mut out = HashSet::new();
                for &s in cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<Reg> = gen[bi].clone();
                for &r in &out {
                    if !kill[bi].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to a block.
    pub fn live_in(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from a block.
    pub fn live_out(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_out[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::BinOp;
    use crate::types::{Operand, Ty};

    fn loop_program() -> (Program, Reg, Reg) {
        // i defined in entry, used+redefined in body; acc likewise
        let mut b = ProgramBuilder::new("lp");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.mov_to(acc, Operand::imm_int(0));
        b.jump(header);
        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(8));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        let na = b.binary(BinOp::Add, acc.into(), i.into());
        b.mov_to(acc, na.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);
        b.select_block(exit);
        b.ret(Some(acc.into()));
        (b.finish().expect("valid"), i, acc)
    }

    use crate::program::Program;

    #[test]
    fn def_use_index() {
        let (p, i, acc) = loop_program();
        let du = DefUse::new(&p);
        // i: defined by the entry mov and the body mov
        assert_eq!(du.defs_of(i).len(), 2);
        assert!(!du.is_single_def(i));
        // acc used by add in body and by ret
        assert!(du.uses_of(acc).len() >= 2);
        // every instruction has a location
        for (_, inst) in p.insts() {
            assert!(du.loc(inst.id).is_some());
        }
        // unknown register has no defs/uses
        assert!(du.defs_of(Reg(999)).is_empty());
        assert!(du.uses_of(Reg(999)).is_empty());
    }

    #[test]
    fn liveness_around_loop() {
        let (p, i, acc) = loop_program();
        let cfg = Cfg::new(&p);
        let lv = Liveness::new(&p, &cfg);
        let header = BlockId(1);
        let body = BlockId(2);
        let exit = BlockId(3);
        // i and acc are live around the loop
        assert!(lv.live_in(header).contains(&i));
        assert!(lv.live_in(header).contains(&acc));
        assert!(lv.live_in(body).contains(&i));
        // acc live into exit (returned); i not
        assert!(lv.live_in(exit).contains(&acc));
        assert!(!lv.live_in(exit).contains(&i));
        // nothing live out of exit
        assert!(lv.live_out(exit).is_empty());
    }

    #[test]
    fn dead_def_not_live() {
        let mut b = ProgramBuilder::new("dead");
        let entry = b.entry_block();
        b.select_block(entry);
        let dead = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        b.ret(None);
        let p = b.finish().expect("valid");
        let cfg = Cfg::new(&p);
        let lv = Liveness::new(&p, &cfg);
        assert!(!lv.live_in(entry).contains(&dead));
        assert!(!lv.live_out(entry).contains(&dead));
    }
}
