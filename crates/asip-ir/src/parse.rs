//! Parser for the textual IR format emitted by [`crate::print`].
//!
//! The grammar is line-oriented; see the module-level docs on
//! [`crate::print`] for the emitted shape. Chained super-instructions are
//! print-only (they are synthesized by the design stage, never written by
//! hand), so the parser rejects them.

use crate::block::Block;
use crate::error::{IrError, Result};
use crate::inst::{Inst, InstKind};
use crate::program::{ArrayDecl, ArrayKind, Program};
use crate::types::{ArrayId, BlockId, InstId, Operand, Reg, Ty};

/// Parse a program from its textual form.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number on any syntax error, and
/// any validation error the assembled program would raise.
///
/// ```
/// use asip_ir::parse_program;
///
/// let src = r#"
/// program "t" {
///   entry bb0
///   reg r0: int
///   bb0:
///     i0: r0 = add 1, 2
///     i1: ret r0
/// }
/// "#;
/// let p = parse_program(src).expect("parses");
/// assert_eq!(p.name, "t");
/// assert_eq!(p.inst_count(), 2);
/// ```
pub fn parse_program(text: &str) -> Result<Program> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, strip_comment(l).trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err(&self, line: usize, detail: impl Into<String>) -> IrError {
        IrError::Parse {
            line,
            detail: detail.into(),
        }
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.lines.get(self.pos).copied();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn peek_line(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn parse(mut self) -> Result<Program> {
        let (ln, header) = self.next_line().ok_or_else(|| self.err(0, "empty input"))?;
        let name =
            parse_header(header).ok_or_else(|| self.err(ln, "expected `program \"name\" {`"))?;

        let mut program = Program {
            name,
            reg_types: Vec::new(),
            arrays: Vec::new(),
            blocks: Vec::new(),
            entry: BlockId(0),
            next_inst_id: 0,
        };
        let mut max_inst_id = 0u32;

        while let Some((ln, line)) = self.next_line() {
            if line == "}" {
                program.next_inst_id = max_inst_id;
                program.validate()?;
                return Ok(program);
            }
            if let Some(rest) = line.strip_prefix("entry ") {
                program.entry =
                    parse_block_ref(rest.trim()).ok_or_else(|| self.err(ln, "bad entry block"))?;
            } else if let Some(rest) = line.strip_prefix("reg ") {
                let (reg, ty) =
                    parse_reg_decl(rest).ok_or_else(|| self.err(ln, "bad register declaration"))?;
                if reg.index() != program.reg_types.len() {
                    return Err(self.err(ln, "register declarations must be dense and in order"));
                }
                program.reg_types.push(ty);
            } else if let Some(decl) = parse_array_decl(line) {
                let (id, decl) = decl;
                if id.index() != program.arrays.len() {
                    return Err(self.err(ln, "array declarations must be dense and in order"));
                }
                program.arrays.push(decl);
            } else if let Some((id, label)) = parse_block_header(line) {
                if id.index() != program.blocks.len() {
                    return Err(self.err(ln, "block declarations must be dense and in order"));
                }
                let mut block = Block::new(id);
                block.label = label;
                // parse instructions until next block header or `}`
                while let Some((iln, il)) = self.peek_line() {
                    if il == "}" || parse_block_header(il).is_some() {
                        break;
                    }
                    self.next_line();
                    let inst = parse_inst(il)
                        .ok_or_else(|| self.err(iln, format!("unrecognized instruction `{il}`")))?;
                    max_inst_id = max_inst_id.max(inst.id.0 + 1);
                    block.insts.push(inst);
                }
                program.blocks.push(block);
            } else {
                return Err(self.err(ln, format!("unrecognized line `{line}`")));
            }
        }
        Err(self.err(0, "missing closing `}`"))
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_header(line: &str) -> Option<String> {
    let rest = line.strip_prefix("program ")?.trim().strip_suffix('{')?;
    let rest = rest.trim();
    let name = rest.strip_prefix('"')?.strip_suffix('"')?;
    Some(name.to_string())
}

fn parse_reg_ref(tok: &str) -> Option<Reg> {
    tok.strip_prefix('r')?.parse().ok().map(Reg)
}

fn parse_block_ref(tok: &str) -> Option<BlockId> {
    tok.strip_prefix("bb")?.parse().ok().map(BlockId)
}

fn parse_array_ref(tok: &str) -> Option<ArrayId> {
    tok.strip_prefix('@')?.parse().ok().map(ArrayId)
}

fn parse_ty(tok: &str) -> Option<Ty> {
    match tok {
        "int" => Some(Ty::Int),
        "float" => Some(Ty::Float),
        _ => None,
    }
}

fn parse_reg_decl(rest: &str) -> Option<(Reg, Ty)> {
    // `r0: int`
    let (r, t) = rest.split_once(':')?;
    Some((parse_reg_ref(r.trim())?, parse_ty(t.trim())?))
}

fn parse_array_decl(line: &str) -> Option<(ArrayId, ArrayDecl)> {
    // `input @0 "x": float[100]` or `... float[100] at 4096 step 4`
    let kind = if line.starts_with("input ") {
        ArrayKind::Input
    } else if line.starts_with("output ") {
        ArrayKind::Output
    } else if line.starts_with("internal ") {
        ArrayKind::Internal
    } else {
        return None;
    };
    let rest = line.split_once(' ')?.1.trim();
    let (id_name, ty_rest) = rest.split_once(':')?;
    let id_name = id_name.trim();
    let (id_tok, name_tok) = id_name.split_once(' ')?;
    let id = parse_array_ref(id_tok.trim())?;
    let name = name_tok.trim().strip_prefix('"')?.strip_suffix('"')?;
    let ty_rest = ty_rest.trim();
    // optional layout suffix
    let (ty_len, base, elem_size) = match ty_rest.split_once(" at ") {
        Some((head, layout)) => {
            let (b, s) = layout.split_once(" step ")?;
            (
                head.trim(),
                b.trim().parse::<i64>().ok()?,
                s.trim().parse::<i64>().ok()?,
            )
        }
        None => (ty_rest, 0, 1),
    };
    let ty_len = ty_len.strip_suffix(']')?;
    let (ty_tok, len_tok) = ty_len.split_once('[')?;
    Some((
        id,
        ArrayDecl {
            name: name.to_string(),
            ty: parse_ty(ty_tok.trim())?,
            len: len_tok.trim().parse().ok()?,
            kind,
            base,
            elem_size,
        },
    ))
}

fn parse_block_header(line: &str) -> Option<(BlockId, Option<String>)> {
    // `bb0:` or `bb0 "label":`
    let rest = line.strip_suffix(':')?;
    match rest.split_once(' ') {
        None => Some((parse_block_ref(rest.trim())?, None)),
        Some((id, label)) => {
            let label = label.trim().strip_prefix('"')?.strip_suffix('"')?;
            Some((parse_block_ref(id.trim())?, Some(label.to_string())))
        }
    }
}

fn parse_operand(tok: &str) -> Option<Operand> {
    let tok = tok.trim();
    if let Some(r) = parse_reg_ref(tok) {
        return Some(Operand::Reg(r));
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Some(Operand::ImmInt(v));
    }
    if let Ok(v) = tok.parse::<f64>() {
        return Some(Operand::ImmFloat(v));
    }
    None
}

fn parse_inst(line: &str) -> Option<Inst> {
    // `iN: <payload>`
    let (id_tok, payload) = line.split_once(':')?;
    let id = InstId(id_tok.trim().strip_prefix('i')?.parse().ok()?);
    let payload = payload.trim();

    // terminators and store have no `=`
    if let Some(rest) = payload.strip_prefix("store ") {
        // `store @1[r0], r3`
        let (addr, value) = rest.rsplit_once(',')?;
        let addr = addr.trim().strip_suffix(']')?;
        let (arr, idx) = addr.split_once('[')?;
        return Some(Inst::new(
            id,
            InstKind::Store {
                array: parse_array_ref(arr.trim())?,
                index: parse_operand(idx)?,
                value: parse_operand(value)?,
            },
        ));
    }
    if let Some(rest) = payload.strip_prefix("br ") {
        let mut parts = rest.split(',');
        let cond = parse_operand(parts.next()?)?;
        let then_target = parse_block_ref(parts.next()?.trim())?;
        let else_target = parse_block_ref(parts.next()?.trim())?;
        if parts.next().is_some() {
            return None;
        }
        return Some(Inst::new(
            id,
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            },
        ));
    }
    if let Some(rest) = payload.strip_prefix("jmp ") {
        return Some(Inst::new(
            id,
            InstKind::Jump {
                target: parse_block_ref(rest.trim())?,
            },
        ));
    }
    if payload == "ret" {
        return Some(Inst::new(id, InstKind::Ret { value: None }));
    }
    if let Some(rest) = payload.strip_prefix("ret ") {
        return Some(Inst::new(
            id,
            InstKind::Ret {
                value: Some(parse_operand(rest)?),
            },
        ));
    }

    // assignments: `rD = ...`
    let (dst_tok, rhs) = payload.split_once('=')?;
    let dst = parse_reg_ref(dst_tok.trim())?;
    let rhs = rhs.trim();

    if let Some(rest) = rhs.strip_prefix("load ") {
        let rest = rest.trim().strip_suffix(']')?;
        let (arr, idx) = rest.split_once('[')?;
        return Some(Inst::new(
            id,
            InstKind::Load {
                dst,
                array: parse_array_ref(arr.trim())?,
                index: parse_operand(idx)?,
            },
        ));
    }
    if rhs.starts_with("chained#") {
        return None; // print-only form
    }

    let (mnemonic, args) = match rhs.split_once(' ') {
        Some((m, a)) => (m, a),
        None => return None,
    };
    if let Some((lhs_tok, rhs_tok)) = args.split_once(',') {
        let op: crate::op::BinOp = mnemonic.parse().ok()?;
        return Some(Inst::new(
            id,
            InstKind::Binary {
                op,
                dst,
                lhs: parse_operand(lhs_tok)?,
                rhs: parse_operand(rhs_tok)?,
            },
        ));
    }
    let op: crate::op::UnOp = mnemonic.parse().ok()?;
    Some(Inst::new(
        id,
        InstKind::Unary {
            op,
            dst,
            src: parse_operand(args)?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::{BinOp, UnOp};

    #[test]
    fn round_trips_representative_program() {
        let mut b = ProgramBuilder::new("rt");
        let x = b.input_array("x", Ty::Float, 100);
        let y = b.output_array("y", Ty::Float, 100);
        let entry = b.entry_block();
        let header = b.new_labeled_block("header");
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.mov_to(i, Operand::imm_int(0));
        b.jump(header);
        b.select_block(header);
        let c = b.binary(BinOp::CmpLt, i.into(), Operand::imm_int(100));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        let v = b.load(x, i.into());
        let w = b.binary(BinOp::FMul, v.into(), Operand::imm_float(0.5));
        let w2 = b.binary(BinOp::FAdd, w.into(), Operand::imm_float(1.25));
        b.store(y, i.into(), w2.into());
        let fi = b.unary(UnOp::IntToFloat, i.into());
        let _ = b.unary(UnOp::Math(crate::op::MathFn::Sin), fi.into());
        let ni = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, ni.into());
        b.jump(header);
        b.select_block(exit);
        b.ret(None);
        let p = b.finish().expect("valid");

        let text = p.to_string();
        let q = parse_program(&text).expect("parses back");
        assert_eq!(p, q);
    }

    #[test]
    fn parses_doc_example() {
        let src = r#"
; a comment
program "t" {
  entry bb0
  reg r0: int
  bb0:
    i0: r0 = add 1, 2   ; trailing comment
    i1: ret r0
}
"#;
        let p = parse_program(src).expect("parses");
        assert_eq!(p.inst_count(), 2);
        assert_eq!(p.reg_types.len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("nonsense").is_err());
        assert!(parse_program("program \"x\" {\n").is_err()); // missing }
        let bad_inst = "program \"x\" {\n entry bb0\n bb0:\n i0: r0 = frobnicate 1\n}\n";
        assert!(parse_program(bad_inst).is_err());
    }

    #[test]
    fn rejects_sparse_declarations() {
        let sparse_reg = "program \"x\" {\n entry bb0\n reg r1: int\n bb0:\n i0: ret\n}\n";
        assert!(parse_program(sparse_reg).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let src = "program \"x\" {\n  entry bb0\n  bb0:\n    i0: r0 = add ?, 2\n}\n";
        match parse_program(src) {
            Err(IrError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn validation_runs_after_parse() {
        // references r5 which is never declared
        let src = "program \"x\" {\n entry bb0\n bb0:\n i0: ret r5\n}\n";
        assert!(matches!(parse_program(src), Err(IrError::UnknownReg(5))));
    }
}
