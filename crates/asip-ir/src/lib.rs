//! # asip-ir
//!
//! The three-address intermediate representation (TAC) shared by every
//! stage of the `asip-explorer` pipeline, together with the control-flow
//! and data-flow analyses the optimizer and the sequence detector need.
//!
//! In the paper's flow (Figure 2) this is the "3-address code" produced by
//! the modified gcc front end; here it is produced by
//! [`asip-frontend`](https://docs.rs/asip-frontend) and consumed by the
//! simulator, the optimizer and the ASIP synthesis stage.
//!
//! ## Layout
//!
//! - [`types`] — value types, registers, operands and id newtypes.
//! - [`op`] — operations and the [`OpClass`] vocabulary used for
//!   sequence signatures (`add-multiply`, `fload-fmultiply`, …).
//! - [`inst`] / [`block`] / [`program`] — the IR proper.
//! - [`builder`] — ergonomic construction of programs.
//! - [`cfg`](mod@cfg) — successors/predecessors, reverse postorder, dominators.
//! - [`loops`] — natural-loop detection (for loop pipelining).
//! - [`dataflow`] — def/use information and liveness.
//! - [`deps`] — flow/anti/output dependence queries.
//! - [`print`](mod@print) / [`parse`] — a stable textual format with round-tripping.
//!
//! ## Example
//!
//! ```
//! use asip_ir::{BinOp, Operand, ProgramBuilder, Ty};
//!
//! let mut b = ProgramBuilder::new("dot2");
//! let x = b.input_array("x", Ty::Int, 2);
//! let acc = b.new_reg(Ty::Int);
//! let entry = b.entry_block();
//! b.select_block(entry);
//! let x0 = b.load(x, Operand::imm_int(0));
//! let x1 = b.load(x, Operand::imm_int(1));
//! let prod = b.binary(BinOp::Mul, x0.into(), x1.into());
//! b.mov_to(acc, prod.into());
//! b.ret(None);
//! let program = b.finish().expect("well-formed program");
//! assert_eq!(program.blocks().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod cfg;
pub mod dataflow;
pub mod deps;
pub mod error;
pub mod inst;
pub mod loops;
pub mod op;
pub mod parse;
pub mod passes;
pub mod print;
pub mod program;
pub mod types;

pub use block::Block;
pub use builder::ProgramBuilder;
pub use cfg::{Cfg, Dominators};
pub use dataflow::{DefUse, Liveness};
pub use deps::{DepKind, Dependence};
pub use error::{IrError, Result};
pub use inst::{Inst, InstKind};
pub use loops::{Loop, LoopForest};
pub use op::{BinOp, MathFn, OpClass, UnOp};
pub use parse::parse_program;
pub use program::{ArrayDecl, ArrayKind, Program};
pub use types::{ArrayId, BlockId, InstId, Operand, Reg, Ty, Value};
