//! Instructions.

use crate::op::{BinOp, OpClass, UnOp};
use crate::types::{ArrayId, BlockId, InstId, Operand, Reg};
use serde::{Deserialize, Serialize};
use smallvec_shim::SmallOperands;

/// A single three-address instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// Stable identity (see [`InstId`] for profile-attribution semantics).
    pub id: InstId,
    /// The operation payload.
    pub kind: InstKind,
}

/// The operation payload of an [`Inst`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstKind {
    /// `dst = op lhs, rhs`
    Binary {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op src`
    Unary {
        /// Operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = array[index]`
    Load {
        /// Destination register.
        dst: Reg,
        /// Array being read.
        array: ArrayId,
        /// Element index.
        index: Operand,
    },
    /// `array[index] = value`
    Store {
        /// Array being written.
        array: ArrayId,
        /// Element index.
        index: Operand,
        /// Value stored.
        value: Operand,
    },
    /// Conditional branch on a non-zero condition.
    Branch {
        /// Condition operand (non-zero = taken).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_target: BlockId,
        /// Target when the condition is zero.
        else_target: BlockId,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Return from the program.
    Ret {
        /// Optional returned value.
        value: Option<Operand>,
    },
    /// A chained super-instruction synthesized by the ASIP design stage:
    /// several primitive ops fused into one issue slot, data forwarded
    /// internally (no register-file round trips).
    ///
    /// Evaluation contract (shared with the simulator and the rewriter):
    /// `acc = ops[0](inputs[0], inputs[1])`, then
    /// `acc = ops[i](acc, inputs[i + 1])` for each subsequent op.
    Chained {
        /// Index of the ISA extension this instance uses.
        ext: u32,
        /// Destination of the final op in the chain.
        dst: Reg,
        /// External inputs consumed by the chain, in chain order
        /// (`ops.len() + 1` of them).
        inputs: SmallOperands,
        /// The exact fused operations, head first (e.g. `[Mul, Add]`
        /// for a MAC).
        ops: Vec<BinOp>,
    },
}

/// Minimal inline-vector stand-in so `Inst` stays cheap to clone without
/// pulling in an external small-vector crate.
pub mod smallvec_shim {
    use super::Operand;
    /// Operand list for chained instructions.
    pub type SmallOperands = Vec<Operand>;
}

impl Inst {
    /// Create an instruction with the given id and payload.
    pub fn new(id: InstId, kind: InstKind) -> Self {
        Inst { id, kind }
    }

    /// The register this instruction defines, if any.
    pub fn dst(&self) -> Option<Reg> {
        match &self.kind {
            InstKind::Binary { dst, .. }
            | InstKind::Unary { dst, .. }
            | InstKind::Load { dst, .. }
            | InstKind::Chained { dst, .. } => Some(*dst),
            InstKind::Store { .. }
            | InstKind::Branch { .. }
            | InstKind::Jump { .. }
            | InstKind::Ret { .. } => None,
        }
    }

    /// Replace the destination register (used by register renaming).
    ///
    /// No-op for instructions without a destination.
    pub fn set_dst(&mut self, new: Reg) {
        match &mut self.kind {
            InstKind::Binary { dst, .. }
            | InstKind::Unary { dst, .. }
            | InstKind::Load { dst, .. }
            | InstKind::Chained { dst, .. } => *dst = new,
            _ => {}
        }
    }

    /// All operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match &self.kind {
            InstKind::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstKind::Unary { src, .. } => vec![*src],
            InstKind::Load { index, .. } => vec![*index],
            InstKind::Store { index, value, .. } => vec![*index, *value],
            InstKind::Branch { cond, .. } => vec![*cond],
            InstKind::Jump { .. } => vec![],
            InstKind::Ret { value } => value.iter().copied().collect(),
            InstKind::Chained { inputs, .. } => inputs.clone(),
        }
    }

    /// All registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        self.operands().iter().filter_map(Operand::reg).collect()
    }

    /// Rewrite every register operand via `f` (used by renaming/rewriting).
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        let mut map = |o: &mut Operand| {
            if let Operand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match &mut self.kind {
            InstKind::Binary { lhs, rhs, .. } => {
                map(lhs);
                map(rhs);
            }
            InstKind::Unary { src, .. } => map(src),
            InstKind::Load { index, .. } => map(index),
            InstKind::Store { index, value, .. } => {
                map(index);
                map(value);
            }
            InstKind::Branch { cond, .. } => map(cond),
            InstKind::Jump { .. } => {}
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    map(v);
                }
            }
            InstKind::Chained { inputs, .. } => {
                for i in inputs {
                    map(i);
                }
            }
        }
    }

    /// The array this instruction accesses, with `true` for writes.
    pub fn memory_access(&self) -> Option<(ArrayId, bool)> {
        match &self.kind {
            InstKind::Load { array, .. } => Some((*array, false)),
            InstKind::Store { array, .. } => Some((*array, true)),
            _ => None,
        }
    }

    /// True if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Branch { .. } | InstKind::Jump { .. } | InstKind::Ret { .. }
        )
    }

    /// True if this instruction has side effects beyond its destination
    /// register (memory writes and control flow).
    pub fn has_side_effects(&self) -> bool {
        matches!(self.kind, InstKind::Store { .. }) || self.is_terminator()
    }

    /// The operation class, given a predicate telling whether an array
    /// holds floats (loads/stores split into `load`/`fload` etc. exactly
    /// as the paper's tables do).
    pub fn class_with(&self, array_is_float: impl Fn(ArrayId) -> bool) -> OpClass {
        match &self.kind {
            InstKind::Binary { op, .. } => op.class(),
            InstKind::Unary { op, .. } => op.class(),
            InstKind::Load { array, .. } => {
                if array_is_float(*array) {
                    OpClass::FLoad
                } else {
                    OpClass::Load
                }
            }
            InstKind::Store { array, .. } => {
                if array_is_float(*array) {
                    OpClass::FStore
                } else {
                    OpClass::Store
                }
            }
            InstKind::Branch { .. } | InstKind::Jump { .. } | InstKind::Ret { .. } => {
                OpClass::Branch
            }
            InstKind::Chained { .. } => OpClass::Chained,
        }
    }

    /// Branch/jump successor blocks named by this terminator.
    pub fn targets(&self) -> Vec<BlockId> {
        match &self.kind {
            InstKind::Branch {
                then_target,
                else_target,
                ..
            } => vec![*then_target, *else_target],
            InstKind::Jump { target } => vec![*target],
            _ => vec![],
        }
    }

    /// Retarget control-flow edges via `f` (used when splitting blocks).
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match &mut self.kind {
            InstKind::Branch {
                then_target,
                else_target,
                ..
            } => {
                *then_target = f(*then_target);
                *else_target = f(*else_target);
            }
            InstKind::Jump { target } => *target = f(*target),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MathFn;

    fn inst(kind: InstKind) -> Inst {
        Inst::new(InstId(0), kind)
    }

    #[test]
    fn dst_and_uses() {
        let i = inst(InstKind::Binary {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Reg(0).into(),
            rhs: Operand::imm_int(1),
        });
        assert_eq!(i.dst(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0)]);

        let s = inst(InstKind::Store {
            array: ArrayId(0),
            index: Reg(1).into(),
            value: Reg(3).into(),
        });
        assert_eq!(s.dst(), None);
        assert_eq!(s.uses(), vec![Reg(1), Reg(3)]);
        assert!(s.has_side_effects());
        assert!(!s.is_terminator());
    }

    #[test]
    fn terminators() {
        let b = inst(InstKind::Branch {
            cond: Reg(0).into(),
            then_target: BlockId(1),
            else_target: BlockId(2),
        });
        assert!(b.is_terminator());
        assert_eq!(b.targets(), vec![BlockId(1), BlockId(2)]);

        let j = inst(InstKind::Jump { target: BlockId(3) });
        assert_eq!(j.targets(), vec![BlockId(3)]);

        let r = inst(InstKind::Ret { value: None });
        assert!(r.is_terminator());
        assert!(r.targets().is_empty());
    }

    #[test]
    fn map_targets_rewrites_edges() {
        let mut b = inst(InstKind::Branch {
            cond: Reg(0).into(),
            then_target: BlockId(1),
            else_target: BlockId(2),
        });
        b.map_targets(|t| BlockId(t.0 + 10));
        assert_eq!(b.targets(), vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn classes_split_loads_by_element_type() {
        let l = inst(InstKind::Load {
            dst: Reg(0),
            array: ArrayId(0),
            index: Operand::imm_int(0),
        });
        assert_eq!(l.class_with(|_| false), OpClass::Load);
        assert_eq!(l.class_with(|_| true), OpClass::FLoad);

        let s = inst(InstKind::Store {
            array: ArrayId(0),
            index: Operand::imm_int(0),
            value: Operand::imm_float(1.0),
        });
        assert_eq!(s.class_with(|_| true), OpClass::FStore);
    }

    #[test]
    fn map_uses_renames_registers() {
        let mut i = inst(InstKind::Binary {
            op: BinOp::FMul,
            dst: Reg(9),
            lhs: Reg(1).into(),
            rhs: Reg(2).into(),
        });
        i.map_uses(|r| Reg(r.0 + 100));
        assert_eq!(i.uses(), vec![Reg(101), Reg(102)]);
        assert_eq!(i.dst(), Some(Reg(9)), "map_uses must not touch dst");
        i.set_dst(Reg(42));
        assert_eq!(i.dst(), Some(Reg(42)));
    }

    #[test]
    fn unary_math_class() {
        let m = inst(InstKind::Unary {
            op: UnOp::Math(MathFn::Sin),
            dst: Reg(0),
            src: Reg(1).into(),
        });
        assert_eq!(m.class_with(|_| false), OpClass::Math);
    }

    #[test]
    fn memory_access_query() {
        let l = inst(InstKind::Load {
            dst: Reg(0),
            array: ArrayId(3),
            index: Operand::imm_int(0),
        });
        assert_eq!(l.memory_access(), Some((ArrayId(3), false)));
        let s = inst(InstKind::Store {
            array: ArrayId(4),
            index: Operand::imm_int(0),
            value: Operand::imm_int(1),
        });
        assert_eq!(s.memory_access(), Some((ArrayId(4), true)));
        let r = inst(InstKind::Ret { value: None });
        assert_eq!(r.memory_access(), None);
    }
}
