//! Core value and id types for the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar value types supported by the IR.
///
/// The paper's 3-address code distinguishes integer and floating-point
/// operations (its Table 3 reports `fload-fmultiply` separately from
/// `load-multiply`), so the type is tracked per register and per array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Float,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "float"),
        }
    }
}

/// A virtual register.
///
/// Registers are unbounded; the register file constraint only matters to
/// the ASIP back end, not to the sequence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl Reg {
    /// The register's index into [`crate::Program::reg_types`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a declared array (memory object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// The array's index into [`crate::Program::arrays`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into [`crate::Program::blocks`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A stable identifier for a static instruction.
///
/// Instruction ids survive optimization: when the optimizer clones an
/// instruction (e.g. percolation duplicating an op into both join
/// predecessors) the clone records the original id, so dynamic profile
/// counts collected on the *unoptimized* program (paper Figure 2, step 2)
/// can still be attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    /// Numeric index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// An instruction operand: either a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Read from a virtual register.
    Reg(Reg),
    /// Integer immediate.
    ImmInt(i64),
    /// Floating-point immediate.
    ImmFloat(f64),
}

impl Operand {
    /// Convenience constructor for an integer immediate.
    #[inline]
    pub fn imm_int(v: i64) -> Self {
        Operand::ImmInt(v)
    }

    /// Convenience constructor for a floating-point immediate.
    #[inline]
    pub fn imm_float(v: f64) -> Self {
        Operand::ImmFloat(v)
    }

    /// The register this operand reads, if any.
    #[inline]
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// True if the operand is an immediate constant.
    #[inline]
    pub fn is_imm(&self) -> bool {
        !matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmInt(v) => write!(f, "{v}"),
            Operand::ImmFloat(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A runtime scalar value produced by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Value {
    /// The type of this value.
    #[inline]
    pub fn ty(&self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
        }
    }

    /// Interpret as integer, converting if needed.
    ///
    /// Float-to-int conversion truncates toward zero, matching C casts.
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Float(v) => *v as i64,
        }
    }

    /// Interpret as float, converting if needed.
    #[inline]
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
        }
    }

    /// True iff the value is non-zero (branch condition semantics).
    #[inline]
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
        }
    }

    /// Zero of the given type.
    #[inline]
    pub fn zero(ty: Ty) -> Self {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Float => Value::Float(0.0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(ArrayId(2).to_string(), "@2");
        assert_eq!(InstId(7).to_string(), "i7");
        assert_eq!(Operand::imm_int(-4).to_string(), "-4");
        assert_eq!(Operand::imm_float(2.0).to_string(), "2.0");
        assert_eq!(Operand::imm_float(2.5).to_string(), "2.5");
        assert_eq!(Operand::Reg(Reg(1)).to_string(), "r1");
    }

    #[test]
    fn operand_reg_extraction() {
        assert_eq!(Operand::Reg(Reg(5)).reg(), Some(Reg(5)));
        assert_eq!(Operand::imm_int(1).reg(), None);
        assert!(Operand::imm_float(0.0).is_imm());
        assert!(!Operand::Reg(Reg(0)).is_imm());
    }

    #[test]
    fn value_conversions_match_c_semantics() {
        assert_eq!(Value::Float(2.9).as_int(), 2);
        assert_eq!(Value::Float(-2.9).as_int(), -2);
        assert_eq!(Value::Int(3).as_float(), 3.0);
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert_eq!(Value::zero(Ty::Int), Value::Int(0));
        assert_eq!(Value::zero(Ty::Float), Value::Float(0.0));
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(1).ty(), Ty::Int);
        assert_eq!(Value::Float(1.0).ty(), Ty::Float);
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::Float.to_string(), "float");
    }
}
