//! Pairwise dependence queries between instructions.
//!
//! Percolation scheduling may move an operation upward only when doing so
//! violates no flow, anti, output or memory dependence — these queries are
//! the legality core of the optimizer.

use crate::inst::Inst;
use serde::{Deserialize, Serialize};

/// The kind of dependence from an earlier instruction to a later one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write: later reads a register earlier defines.
    Flow,
    /// Write-after-read: later overwrites a register earlier reads.
    Anti,
    /// Write-after-write on the same register.
    Output,
    /// Potentially aliasing memory accesses (same array, at least one
    /// write, indices not provably distinct).
    Memory,
    /// Ordering against control flow (either side is a terminator).
    Control,
}

/// Dependence testing between instruction pairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dependence;

impl Dependence {
    /// All dependences from `earlier` to `later` (program order).
    pub fn between(earlier: &Inst, later: &Inst) -> Vec<DepKind> {
        let mut kinds = Vec::new();
        if let Some(d) = earlier.dst() {
            if later.uses().contains(&d) {
                kinds.push(DepKind::Flow);
            }
            if later.dst() == Some(d) {
                kinds.push(DepKind::Output);
            }
        }
        if let Some(d) = later.dst() {
            if earlier.uses().contains(&d) {
                kinds.push(DepKind::Anti);
            }
        }
        if let (Some((a1, w1)), Some((a2, w2))) = (earlier.memory_access(), later.memory_access()) {
            if a1 == a2 && (w1 || w2) && !Self::indices_provably_distinct(earlier, later) {
                kinds.push(DepKind::Memory);
            }
        }
        if earlier.is_terminator() || later.is_terminator() {
            kinds.push(DepKind::Control);
        }
        kinds
    }

    /// True if there is any dependence from `earlier` to `later`.
    pub fn depends(earlier: &Inst, later: &Inst) -> bool {
        !Self::between(earlier, later).is_empty()
    }

    /// True if there is a *true* (flow) register dependence only.
    pub fn flow_only(earlier: &Inst, later: &Inst) -> bool {
        let kinds = Self::between(earlier, later);
        kinds.contains(&DepKind::Flow) && kinds.iter().all(|k| matches!(k, DepKind::Flow))
    }

    /// Constant-index disambiguation: both accesses use integer-immediate
    /// indices on the same array and the indices differ.
    fn indices_provably_distinct(a: &Inst, b: &Inst) -> bool {
        use crate::inst::InstKind;
        use crate::types::Operand;
        let index_of = |i: &Inst| match &i.kind {
            InstKind::Load { index, .. } | InstKind::Store { index, .. } => Some(*index),
            _ => None,
        };
        match (index_of(a), index_of(b)) {
            (Some(Operand::ImmInt(x)), Some(Operand::ImmInt(y))) => x != y,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstKind;
    use crate::op::BinOp;
    use crate::types::{ArrayId, BlockId, InstId, Operand, Reg};

    fn bin(id: u32, dst: u32, lhs: u32, rhs: u32) -> Inst {
        Inst::new(
            InstId(id),
            InstKind::Binary {
                op: BinOp::Add,
                dst: Reg(dst),
                lhs: Reg(lhs).into(),
                rhs: Reg(rhs).into(),
            },
        )
    }

    #[test]
    fn flow_dependence() {
        let a = bin(0, 2, 0, 1);
        let b = bin(1, 3, 2, 1);
        assert_eq!(Dependence::between(&a, &b), vec![DepKind::Flow]);
        assert!(Dependence::depends(&a, &b));
        assert!(Dependence::flow_only(&a, &b));
        assert!(!Dependence::depends(&b, &a) || !Dependence::flow_only(&b, &a));
    }

    #[test]
    fn anti_dependence() {
        let a = bin(0, 2, 5, 1); // reads r5
        let b = bin(1, 5, 0, 1); // writes r5
        assert_eq!(Dependence::between(&a, &b), vec![DepKind::Anti]);
    }

    #[test]
    fn output_dependence() {
        let a = bin(0, 7, 0, 1);
        let b = bin(1, 7, 2, 3);
        assert_eq!(Dependence::between(&a, &b), vec![DepKind::Output]);
    }

    #[test]
    fn flow_and_anti_together() {
        let a = bin(0, 2, 3, 1); // writes r2, reads r3
        let b = bin(1, 3, 2, 1); // writes r3, reads r2
        let kinds = Dependence::between(&a, &b);
        assert!(kinds.contains(&DepKind::Flow));
        assert!(kinds.contains(&DepKind::Anti));
        assert!(!Dependence::flow_only(&a, &b));
    }

    #[test]
    fn independent_ops() {
        let a = bin(0, 2, 0, 1);
        let b = bin(1, 3, 0, 1);
        assert!(Dependence::between(&a, &b).is_empty());
        assert!(!Dependence::depends(&a, &b));
    }

    #[test]
    fn memory_dependences() {
        let st = Inst::new(
            InstId(0),
            InstKind::Store {
                array: ArrayId(0),
                index: Reg(0).into(),
                value: Reg(1).into(),
            },
        );
        let ld = Inst::new(
            InstId(1),
            InstKind::Load {
                dst: Reg(2),
                array: ArrayId(0),
                index: Reg(3).into(),
            },
        );
        assert!(Dependence::between(&st, &ld).contains(&DepKind::Memory));
        // two loads never conflict
        let ld2 = Inst::new(
            InstId(2),
            InstKind::Load {
                dst: Reg(4),
                array: ArrayId(0),
                index: Reg(3).into(),
            },
        );
        assert!(!Dependence::between(&ld, &ld2).contains(&DepKind::Memory));
        // different arrays never conflict
        let st_other = Inst::new(
            InstId(3),
            InstKind::Store {
                array: ArrayId(1),
                index: Reg(0).into(),
                value: Reg(1).into(),
            },
        );
        assert!(!Dependence::between(&st_other, &ld).contains(&DepKind::Memory));
    }

    #[test]
    fn constant_indices_disambiguate() {
        let st0 = Inst::new(
            InstId(0),
            InstKind::Store {
                array: ArrayId(0),
                index: Operand::imm_int(0),
                value: Reg(1).into(),
            },
        );
        let ld1 = Inst::new(
            InstId(1),
            InstKind::Load {
                dst: Reg(2),
                array: ArrayId(0),
                index: Operand::imm_int(1),
            },
        );
        let ld0 = Inst::new(
            InstId(2),
            InstKind::Load {
                dst: Reg(3),
                array: ArrayId(0),
                index: Operand::imm_int(0),
            },
        );
        assert!(!Dependence::between(&st0, &ld1).contains(&DepKind::Memory));
        assert!(Dependence::between(&st0, &ld0).contains(&DepKind::Memory));
    }

    #[test]
    fn control_dependence_on_terminators() {
        let a = bin(0, 2, 0, 1);
        let j = Inst::new(InstId(1), InstKind::Jump { target: BlockId(0) });
        assert!(Dependence::between(&a, &j).contains(&DepKind::Control));
        assert!(Dependence::between(&j, &a).contains(&DepKind::Control));
    }
}
