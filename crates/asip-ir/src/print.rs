//! Textual dump of programs (round-trips through [`crate::parse`]).

use crate::inst::{Inst, InstKind};
use crate::program::Program;
use std::fmt;

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program \"{}\" {{", self.name)?;
        writeln!(f, "  entry {}", self.entry)?;
        for (i, ty) in self.reg_types.iter().enumerate() {
            writeln!(f, "  reg r{i}: {ty}")?;
        }
        for (i, a) in self.arrays.iter().enumerate() {
            write!(
                f,
                "  {} @{i} \"{}\": {}[{}]",
                a.kind.keyword(),
                a.name,
                a.ty,
                a.len
            )?;
            if a.base != 0 || a.elem_size != 1 {
                write!(f, " at {} step {}", a.base, a.elem_size)?;
            }
            writeln!(f)?;
        }
        for block in &self.blocks {
            match &block.label {
                Some(l) => writeln!(f, "  {} \"{}\":", block.id, l)?,
                None => writeln!(f, "  {}:", block.id)?,
            }
            for inst in &block.insts {
                writeln!(f, "    {}", DisplayInst(inst))?;
            }
        }
        writeln!(f, "}}")
    }
}

/// Display adapter for a single instruction.
pub struct DisplayInst<'a>(pub &'a Inst);

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inst = self.0;
        write!(f, "{}: ", inst.id)?;
        match &inst.kind {
            InstKind::Binary { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            InstKind::Unary { op, dst, src } => write!(f, "{dst} = {op} {src}"),
            InstKind::Load { dst, array, index } => write!(f, "{dst} = load {array}[{index}]"),
            InstKind::Store {
                array,
                index,
                value,
            } => write!(f, "store {array}[{index}], {value}"),
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            } => write!(f, "br {cond}, {then_target}, {else_target}"),
            InstKind::Jump { target } => write!(f, "jmp {target}"),
            InstKind::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
            InstKind::Chained {
                ext,
                dst,
                inputs,
                ops,
            } => {
                let sig: Vec<String> = ops.iter().map(|o| o.class().to_string()).collect();
                write!(f, "{dst} = chained#{ext} ({})", sig.join("-"))?;
                for (i, input) in inputs.iter().enumerate() {
                    if i == 0 {
                        write!(f, " {input}")?;
                    } else {
                        write!(f, ", {input}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::{BinOp, UnOp};
    use crate::types::{InstId, Operand, Reg, Ty};

    #[test]
    fn program_dump_contains_all_sections() {
        let mut b = ProgramBuilder::new("dump");
        let x = b.input_array("x", Ty::Float, 4);
        let entry = b.entry_block();
        b.select_block(entry);
        let v = b.load(x, Operand::imm_int(0));
        let w = b.binary(BinOp::FMul, v.into(), Operand::imm_float(0.5));
        let _ = b.unary(UnOp::FloatToInt, w.into());
        b.ret(None);
        let p = b.finish().expect("valid");
        let s = p.to_string();
        assert!(s.contains("program \"dump\""));
        assert!(s.contains("entry bb0"));
        assert!(s.contains("input @0 \"x\": float[4]"));
        assert!(s.contains("= load @0[0]"));
        assert!(s.contains("= fmul"));
        assert!(s.contains("= ftoi"));
        assert!(s.contains("ret"));
    }

    #[test]
    fn chained_display() {
        let inst = Inst::new(
            InstId(0),
            InstKind::Chained {
                ext: 2,
                dst: Reg(5),
                inputs: vec![Reg(1).into(), Reg(2).into(), Reg(3).into()],
                ops: vec![BinOp::Mul, BinOp::Add],
            },
        );
        let s = DisplayInst(&inst).to_string();
        assert_eq!(s, "i0: r5 = chained#2 (multiply-add) r1, r2, r3");
    }

    #[test]
    fn store_and_branch_display() {
        let st = Inst::new(
            InstId(3),
            InstKind::Store {
                array: crate::types::ArrayId(1),
                index: Reg(0).into(),
                value: Operand::imm_float(1.5),
            },
        );
        assert_eq!(DisplayInst(&st).to_string(), "i3: store @1[r0], 1.5");
        let br = Inst::new(
            InstId(4),
            InstKind::Branch {
                cond: Reg(2).into(),
                then_target: crate::types::BlockId(1),
                else_target: crate::types::BlockId(2),
            },
        );
        assert_eq!(DisplayInst(&br).to_string(), "i4: br r2, bb1, bb2");
    }
}
