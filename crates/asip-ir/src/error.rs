//! Error types for IR construction, validation and parsing.

use std::fmt;

/// Convenience alias for IR results.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors produced while building, validating or parsing IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A block reference points outside the program.
    UnknownBlock(u32),
    /// A register reference points outside the register table.
    UnknownReg(u32),
    /// An array reference points outside the array table.
    UnknownArray(u32),
    /// A block violates the single-terminator-last invariant.
    MalformedBlock(u32),
    /// Two instructions share an id.
    DuplicateInstId(u32),
    /// The program has no blocks.
    EmptyProgram,
    /// A type error detected during validation.
    TypeMismatch {
        /// Instruction id where the mismatch occurred.
        inst: u32,
        /// Human-readable explanation.
        detail: String,
    },
    /// A parse error in the textual format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable explanation.
        detail: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownBlock(b) => write!(f, "reference to unknown block bb{b}"),
            IrError::UnknownReg(r) => write!(f, "reference to unknown register r{r}"),
            IrError::UnknownArray(a) => write!(f, "reference to unknown array @{a}"),
            IrError::MalformedBlock(b) => {
                write!(f, "block bb{b} is not terminated by exactly one terminator")
            }
            IrError::DuplicateInstId(i) => write!(f, "duplicate instruction id i{i}"),
            IrError::EmptyProgram => write!(f, "program has no blocks"),
            IrError::TypeMismatch { inst, detail } => {
                write!(f, "type mismatch at i{inst}: {detail}")
            }
            IrError::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = IrError::UnknownBlock(3);
        assert_eq!(e.to_string(), "reference to unknown block bb3");
        let e = IrError::Parse {
            line: 7,
            detail: "expected register".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = IrError::TypeMismatch {
            inst: 2,
            detail: "int vs float".into(),
        };
        assert!(e.to_string().contains("i2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
