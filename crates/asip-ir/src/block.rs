//! Basic blocks.

use crate::inst::Inst;
use crate::types::BlockId;
use serde::{Deserialize, Serialize};

/// A basic block: straight-line instructions ending in one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// This block's id (its index in [`crate::Program::blocks`]).
    pub id: BlockId,
    /// Optional label (kept from the front end for readable dumps).
    pub label: Option<String>,
    /// Instructions; the last one is the terminator.
    pub insts: Vec<Inst>,
}

impl Block {
    /// An empty block with the given id.
    pub fn new(id: BlockId) -> Self {
        Block {
            id,
            label: None,
            insts: Vec::new(),
        }
    }

    /// The terminator instruction, if the block is complete.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Instructions excluding the terminator.
    pub fn body(&self) -> &[Inst] {
        match self.insts.last() {
            Some(last) if last.is_terminator() => &self.insts[..self.insts.len() - 1],
            _ => &self.insts,
        }
    }

    /// Successor blocks (from the terminator).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator().map(|t| t.targets()).unwrap_or_default()
    }

    /// True if the block has a terminator as its final instruction and no
    /// terminator earlier.
    pub fn is_well_formed(&self) -> bool {
        match self.insts.last() {
            None => false,
            Some(last) => {
                last.is_terminator()
                    && self.insts[..self.insts.len() - 1]
                        .iter()
                        .all(|i| !i.is_terminator())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstKind;
    use crate::op::BinOp;
    use crate::types::{InstId, Operand, Reg};

    fn add(id: u32) -> Inst {
        Inst::new(
            InstId(id),
            InstKind::Binary {
                op: BinOp::Add,
                dst: Reg(0),
                lhs: Operand::imm_int(1),
                rhs: Operand::imm_int(2),
            },
        )
    }

    fn ret(id: u32) -> Inst {
        Inst::new(InstId(id), InstKind::Ret { value: None })
    }

    #[test]
    fn well_formedness() {
        let mut b = Block::new(BlockId(0));
        assert!(!b.is_well_formed(), "empty block is malformed");
        b.insts.push(add(0));
        assert!(!b.is_well_formed(), "missing terminator");
        b.insts.push(ret(1));
        assert!(b.is_well_formed());
        assert_eq!(b.body().len(), 1);
        assert!(b.terminator().is_some());

        // terminator in the middle is malformed
        let mut bad = Block::new(BlockId(1));
        bad.insts.push(ret(2));
        bad.insts.push(add(3));
        bad.insts.push(ret(4));
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn successors_from_terminator() {
        let mut b = Block::new(BlockId(0));
        b.insts
            .push(Inst::new(InstId(0), InstKind::Jump { target: BlockId(7) }));
        assert_eq!(b.successors(), vec![BlockId(7)]);
    }

    #[test]
    fn body_of_unterminated_block_is_everything() {
        let mut b = Block::new(BlockId(0));
        b.insts.push(add(0));
        b.insts.push(add(1));
        assert_eq!(b.body().len(), 2);
        assert!(b.terminator().is_none());
        assert!(b.successors().is_empty());
    }
}
