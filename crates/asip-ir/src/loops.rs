//! Natural-loop detection.
//!
//! Loop pipelining (paper optimization level 1) operates on innermost
//! natural loops; this module finds them via dominator-identified back
//! edges.

use crate::cfg::{Cfg, Dominators};
use crate::types::BlockId;
use std::collections::BTreeSet;

/// A natural loop: a header plus the set of blocks that can reach the back
/// edge's source without leaving through the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edge; dominates the body).
    pub header: BlockId,
    /// Sources of back edges into the header (usually one: the latch).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Loop nesting depth (1 = outermost).
    pub depth: usize,
}

impl Loop {
    /// True if the given block belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// True if `other` is strictly nested inside this loop.
    pub fn encloses(&self, other: &Loop) -> bool {
        other.header != self.header && self.blocks.contains(&other.header)
    }
}

/// All natural loops of a program, with nesting depths.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Find natural loops from CFG + dominators.
    ///
    /// Back edges `latch -> header` (where `header` dominates `latch`) are
    /// grouped by header; each group's bodies are merged into one loop.
    /// Irreducible edges (target does not dominate source) are ignored,
    /// matching what a 1995-era VLIW compiler would pipeline.
    pub fn new(cfg: &Cfg, dom: &Dominators) -> Self {
        use std::collections::BTreeMap;
        let mut by_header: BTreeMap<BlockId, (Vec<BlockId>, BTreeSet<BlockId>)> = BTreeMap::new();

        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    // back edge b -> s
                    let entry = by_header.entry(s).or_default();
                    entry.0.push(b);
                    // collect body: reverse reachability from latch to header
                    let mut body = BTreeSet::new();
                    body.insert(s);
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in cfg.preds(x) {
                                if cfg.is_reachable(p) {
                                    stack.push(p);
                                }
                            }
                        }
                    }
                    entry.1.extend(body);
                }
            }
        }

        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, (latches, blocks))| Loop {
                header,
                latches,
                blocks,
                depth: 1,
            })
            .collect();

        // nesting depth = number of loops whose body contains this header
        let depths: Vec<usize> = loops
            .iter()
            .map(|l| 1 + loops.iter().filter(|outer| outer.encloses(l)).count())
            .collect();
        for (l, d) in loops.iter_mut().zip(depths) {
            l.depth = d;
        }
        // deterministic order: outermost first, then by header id
        loops.sort_by_key(|l| (l.depth, l.header));
        LoopForest { loops }
    }

    /// All loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Innermost loops only (those that enclose no other loop).
    pub fn innermost(&self) -> Vec<&Loop> {
        self.loops
            .iter()
            .filter(|l| !self.loops.iter().any(|o| l.encloses(o)))
            .collect()
    }

    /// The innermost loop containing a block, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::BinOp;
    use crate::program::Program;
    use crate::types::{Operand, Ty};

    fn single_loop() -> Program {
        let mut b = ProgramBuilder::new("loop1");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.jump(header);
        b.select_block(header);
        b.binary_to(c, BinOp::CmpLt, Operand::imm_int(0), Operand::imm_int(1));
        b.branch(c.into(), body, exit);
        b.select_block(body);
        b.jump(header);
        b.select_block(exit);
        b.ret(None);
        b.finish().expect("valid")
    }

    fn nested_loops() -> Program {
        // entry -> oh; oh -> ih | exit; ih -> ibody | olatch; ibody -> ih;
        // olatch -> oh
        let mut b = ProgramBuilder::new("nest");
        let entry = b.entry_block();
        let oh = b.new_block();
        let ih = b.new_block();
        let ibody = b.new_block();
        let olatch = b.new_block();
        let exit = b.new_block();
        let c = b.new_reg(Ty::Int);
        b.select_block(entry);
        b.jump(oh);
        b.select_block(oh);
        b.binary_to(c, BinOp::CmpLt, Operand::imm_int(0), Operand::imm_int(1));
        b.branch(c.into(), ih, exit);
        b.select_block(ih);
        b.branch(c.into(), ibody, olatch);
        b.select_block(ibody);
        b.jump(ih);
        b.select_block(olatch);
        b.jump(oh);
        b.select_block(exit);
        b.ret(None);
        b.finish().expect("valid")
    }

    fn analyze(p: &Program) -> LoopForest {
        let cfg = Cfg::new(p);
        let dom = Dominators::new(&cfg);
        LoopForest::new(&cfg, &dom)
    }

    #[test]
    fn finds_single_loop() {
        let p = single_loop();
        let f = analyze(&p);
        assert_eq!(f.loops().len(), 1);
        let l = &f.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)));
        assert!(!l.contains(BlockId(3)));
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn finds_nested_loops_with_depths() {
        let p = nested_loops();
        let f = analyze(&p);
        assert_eq!(f.loops().len(), 2);
        let outer = &f.loops()[0];
        let inner = &f.loops()[1];
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.encloses(inner));
        assert!(!inner.encloses(outer));
        let innermost = f.innermost();
        assert_eq!(innermost.len(), 1);
        assert_eq!(innermost[0].header, inner.header);
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let p = nested_loops();
        let f = analyze(&p);
        let inner_header = f.loops()[1].header;
        let hit = f.innermost_containing(inner_header).expect("in a loop");
        assert_eq!(hit.depth, 2);
        assert!(f.innermost_containing(BlockId(0)).is_none());
    }

    #[test]
    fn straight_line_program_has_no_loops() {
        let mut b = ProgramBuilder::new("straight");
        let entry = b.entry_block();
        b.select_block(entry);
        b.ret(None);
        let p = b.finish().expect("valid");
        assert!(analyze(&p).loops().is_empty());
    }
}
