//! Operations and the operation-class vocabulary.
//!
//! [`OpClass`] is the alphabet from which sequence signatures are formed.
//! The paper's result tables name classes such as `add`, `multiply`,
//! `shift`, `compare`, `load`, and float-prefixed `fload`, `fmultiply`,
//! `fsub`, `fstore`; this module reproduces that vocabulary exactly so the
//! regenerated tables read like the paper's.

use crate::types::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating; division by zero yields zero in the
    /// simulator, which keeps random-data benchmarks total).
    Div,
    /// Integer remainder.
    Rem,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Integer compare: less-than (produces 0/1).
    CmpLt,
    /// Integer compare: less-or-equal.
    CmpLe,
    /// Integer compare: greater-than.
    CmpGt,
    /// Integer compare: greater-or-equal.
    CmpGe,
    /// Integer compare: equal.
    CmpEq,
    /// Integer compare: not-equal.
    CmpNe,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Float compare: less-than (produces int 0/1).
    FCmpLt,
    /// Float compare: less-or-equal.
    FCmpLe,
    /// Float compare: greater-than.
    FCmpGt,
    /// Float compare: greater-or-equal.
    FCmpGe,
    /// Float compare: equal.
    FCmpEq,
    /// Float compare: not-equal.
    FCmpNe,
}

impl BinOp {
    /// The operation class used in sequence signatures.
    pub fn class(self) -> OpClass {
        use BinOp::*;
        match self {
            Add => OpClass::Add,
            Sub => OpClass::Sub,
            Mul => OpClass::Mul,
            Div | Rem => OpClass::Div,
            Shl | Shr => OpClass::Shift,
            And | Or | Xor => OpClass::Logic,
            CmpLt | CmpLe | CmpGt | CmpGe | CmpEq | CmpNe => OpClass::Compare,
            FAdd => OpClass::FAdd,
            FSub => OpClass::FSub,
            FMul => OpClass::FMul,
            FDiv => OpClass::FDiv,
            FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe => OpClass::Compare,
        }
    }

    /// Result type of the operation.
    pub fn result_ty(self) -> Ty {
        use BinOp::*;
        match self {
            FAdd | FSub | FMul | FDiv => Ty::Float,
            _ => Ty::Int,
        }
    }

    /// True for the six integer and six float comparison operators.
    pub fn is_compare(self) -> bool {
        self.class() == OpClass::Compare
    }

    /// True if this is a floating-point operation (including float compares).
    pub fn is_float(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe
        )
    }

    /// Mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Shl => "shl",
            Shr => "shr",
            And => "and",
            Or => "or",
            Xor => "xor",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
            FCmpGt => "fcmpgt",
            FCmpGe => "fcmpge",
            FCmpEq => "fcmpeq",
            FCmpNe => "fcmpne",
        }
    }

    /// All binary operations (for exhaustive testing).
    pub fn all() -> &'static [BinOp] {
        use BinOp::*;
        &[
            Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor, CmpLt, CmpLe, CmpGt, CmpGe, CmpEq,
            CmpNe, FAdd, FSub, FMul, FDiv, FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for BinOp {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BinOp::all()
            .iter()
            .copied()
            .find(|op| op.mnemonic() == s)
            .ok_or(())
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Float negation.
    FNeg,
    /// Register-to-register move.
    Mov,
    /// Integer-to-float conversion.
    IntToFloat,
    /// Float-to-integer conversion (truncating).
    FloatToInt,
    /// Math intrinsic applied to a float.
    Math(MathFn),
}

impl UnOp {
    /// The operation class used in sequence signatures.
    pub fn class(self) -> OpClass {
        match self {
            UnOp::Neg | UnOp::Not => OpClass::Logic,
            UnOp::FNeg => OpClass::FSub,
            UnOp::Mov => OpClass::Move,
            UnOp::IntToFloat | UnOp::FloatToInt => OpClass::Convert,
            UnOp::Math(_) => OpClass::Math,
        }
    }

    /// Result type, given the source type for type-preserving ops.
    pub fn result_ty(self, src: Ty) -> Ty {
        match self {
            UnOp::Neg | UnOp::Not => Ty::Int,
            UnOp::FNeg => Ty::Float,
            UnOp::Mov => src,
            UnOp::IntToFloat => Ty::Float,
            UnOp::FloatToInt => Ty::Int,
            UnOp::Math(_) => Ty::Float,
        }
    }

    /// Mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::Mov => "mov",
            UnOp::IntToFloat => "itof",
            UnOp::FloatToInt => "ftoi",
            UnOp::Math(m) => m.name(),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for UnOp {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            "fneg" => UnOp::FNeg,
            "mov" => UnOp::Mov,
            "itof" => UnOp::IntToFloat,
            "ftoi" => UnOp::FloatToInt,
            other => UnOp::Math(other.parse()?),
        })
    }
}

/// Math intrinsics available to mini-C programs (the FFT benchmarks need
/// `sin`/`cos`; `sqrt`/`fabs` appear in magnitude computations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MathFn {
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Square root.
    Sqrt,
    /// Absolute value.
    FAbs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Floor.
    Floor,
}

impl MathFn {
    /// Function name as written in mini-C and the textual IR.
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Sqrt => "sqrt",
            MathFn::FAbs => "fabs",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Floor => "floor",
        }
    }

    /// Evaluate the intrinsic.
    pub fn eval(self, x: f64) -> f64 {
        match self {
            MathFn::Sin => x.sin(),
            MathFn::Cos => x.cos(),
            MathFn::Sqrt => x.sqrt(),
            MathFn::FAbs => x.abs(),
            MathFn::Exp => x.exp(),
            MathFn::Log => x.ln(),
            MathFn::Floor => x.floor(),
        }
    }

    /// All intrinsics (for exhaustive testing).
    pub fn all() -> &'static [MathFn] {
        &[
            MathFn::Sin,
            MathFn::Cos,
            MathFn::Sqrt,
            MathFn::FAbs,
            MathFn::Exp,
            MathFn::Log,
            MathFn::Floor,
        ]
    }
}

impl FromStr for MathFn {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MathFn::all()
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .ok_or(())
    }
}

impl fmt::Display for MathFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operation classes: the alphabet of sequence signatures.
///
/// Display renders the exact words used by the paper's tables
/// (`multiply`, `fload`, `fmultiply`, …) so a signature prints as e.g.
/// `add-multiply-add`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division / remainder.
    Div,
    /// Shifts.
    Shift,
    /// Bitwise logic and unary integer ops.
    Logic,
    /// Comparisons (integer and float).
    Compare,
    /// Integer load.
    Load,
    /// Integer store.
    Store,
    /// Float addition.
    FAdd,
    /// Float subtraction / negation.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Float load.
    FLoad,
    /// Float store.
    FStore,
    /// Register move.
    Move,
    /// Int/float conversion.
    Convert,
    /// Math intrinsic.
    Math,
    /// Control transfer (branch/jump/ret). Never part of a chain.
    Branch,
    /// A chained super-instruction synthesized by the ASIP design stage.
    Chained,
}

impl OpClass {
    /// True if an op of this class may participate in a chained sequence.
    ///
    /// Control transfers and already-chained ops are excluded; everything
    /// that computes or moves data is fair game (the paper reports chains
    /// involving loads, stores, compares and shifts).
    pub fn is_chainable(self) -> bool {
        !matches!(self, OpClass::Branch | OpClass::Chained)
    }

    /// The paper's word for this class.
    pub fn paper_name(self) -> &'static str {
        match self {
            OpClass::Add => "add",
            OpClass::Sub => "subtract",
            OpClass::Mul => "multiply",
            OpClass::Div => "divide",
            OpClass::Shift => "shift",
            OpClass::Logic => "logic",
            OpClass::Compare => "compare",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::FAdd => "fadd",
            OpClass::FSub => "fsub",
            OpClass::FMul => "fmultiply",
            OpClass::FDiv => "fdivide",
            OpClass::FLoad => "fload",
            OpClass::FStore => "fstore",
            OpClass::Move => "move",
            OpClass::Convert => "convert",
            OpClass::Math => "math",
            OpClass::Branch => "branch",
            OpClass::Chained => "chained",
        }
    }

    /// All classes (for exhaustive testing).
    pub fn all() -> &'static [OpClass] {
        use OpClass::*;
        &[
            Add, Sub, Mul, Div, Shift, Logic, Compare, Load, Store, FAdd, FSub, FMul, FDiv, FLoad,
            FStore, Move, Convert, Math, Branch, Chained,
        ]
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

impl FromStr for OpClass {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OpClass::all()
            .iter()
            .copied()
            .find(|c| c.paper_name() == s)
            .ok_or(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_mnemonics_round_trip() {
        for &op in BinOp::all() {
            let parsed: BinOp = op.mnemonic().parse().expect("parses");
            assert_eq!(parsed, op);
        }
        assert!("bogus".parse::<BinOp>().is_err());
    }

    #[test]
    fn unop_mnemonics_round_trip() {
        let ops = [
            UnOp::Neg,
            UnOp::Not,
            UnOp::FNeg,
            UnOp::Mov,
            UnOp::IntToFloat,
            UnOp::FloatToInt,
            UnOp::Math(MathFn::Sin),
            UnOp::Math(MathFn::Sqrt),
        ];
        for op in ops {
            let parsed: UnOp = op.mnemonic().parse().expect("parses");
            assert_eq!(parsed, op);
        }
    }

    #[test]
    fn op_class_paper_names_round_trip() {
        for &c in OpClass::all() {
            let parsed: OpClass = c.paper_name().parse().expect("parses");
            assert_eq!(parsed, c);
        }
    }

    #[test]
    fn classes_match_paper_vocabulary() {
        assert_eq!(BinOp::Mul.class().to_string(), "multiply");
        assert_eq!(BinOp::FMul.class().to_string(), "fmultiply");
        assert_eq!(BinOp::Shl.class().to_string(), "shift");
        assert_eq!(BinOp::CmpLt.class().to_string(), "compare");
        assert_eq!(BinOp::FCmpGt.class().to_string(), "compare");
        assert_eq!(OpClass::FLoad.to_string(), "fload");
        assert_eq!(OpClass::FStore.to_string(), "fstore");
    }

    #[test]
    fn chainability() {
        assert!(OpClass::Add.is_chainable());
        assert!(OpClass::Load.is_chainable());
        assert!(OpClass::Compare.is_chainable());
        assert!(!OpClass::Branch.is_chainable());
        assert!(!OpClass::Chained.is_chainable());
    }

    #[test]
    fn result_types() {
        assert_eq!(BinOp::Add.result_ty(), Ty::Int);
        assert_eq!(BinOp::FMul.result_ty(), Ty::Float);
        assert_eq!(BinOp::FCmpLt.result_ty(), Ty::Int);
        assert_eq!(UnOp::IntToFloat.result_ty(Ty::Int), Ty::Float);
        assert_eq!(UnOp::FloatToInt.result_ty(Ty::Float), Ty::Int);
        assert_eq!(UnOp::Mov.result_ty(Ty::Float), Ty::Float);
        assert_eq!(UnOp::Mov.result_ty(Ty::Int), Ty::Int);
        assert_eq!(UnOp::Math(MathFn::Cos).result_ty(Ty::Float), Ty::Float);
    }

    #[test]
    fn math_fn_eval() {
        assert_eq!(MathFn::FAbs.eval(-2.5), 2.5);
        assert_eq!(MathFn::Sqrt.eval(9.0), 3.0);
        assert_eq!(MathFn::Floor.eval(2.7), 2.0);
        assert!((MathFn::Sin.eval(0.0)).abs() < 1e-12);
        assert!((MathFn::Cos.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((MathFn::Exp.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((MathFn::Log.eval(1.0)).abs() < 1e-12);
    }

    #[test]
    fn float_binop_detection() {
        assert!(BinOp::FAdd.is_float());
        assert!(BinOp::FCmpEq.is_float());
        assert!(!BinOp::Add.is_float());
        assert!(BinOp::CmpEq.is_compare());
        assert!(BinOp::FCmpEq.is_compare());
        assert!(!BinOp::Mul.is_compare());
    }
}
