//! The top-level program container and its validator.

use crate::block::Block;
use crate::error::{IrError, Result};
use crate::inst::{Inst, InstKind};
use crate::op::OpClass;
use crate::types::{ArrayId, BlockId, InstId, Operand, Reg, Ty};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// How an array is bound at simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayKind {
    /// Filled from the experiment's input data before execution.
    Input,
    /// Written by the program; checked/ignored by the harness.
    Output,
    /// Scratch storage, zero-initialized.
    Internal,
}

impl ArrayKind {
    /// Keyword used in the textual format.
    pub fn keyword(self) -> &'static str {
        match self {
            ArrayKind::Input => "input",
            ArrayKind::Output => "output",
            ArrayKind::Internal => "internal",
        }
    }
}

/// A declared memory object.
///
/// `base` and `elem_size` describe the array's address layout: a
/// [`crate::InstKind::Load`]/`Store` index operand holds
/// `base + element_index * elem_size`. The default layout (`base = 0`,
/// `elem_size = 1`) makes indices plain element numbers; a front end
/// that emits explicit address arithmetic (scaling multiply + base add,
/// as gcc-era 3-address code does) assigns real byte layouts instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Number of elements.
    pub len: usize,
    /// Binding kind.
    pub kind: ArrayKind,
    /// Address of element 0.
    pub base: i64,
    /// Bytes per element (1 = element-indexed).
    pub elem_size: i64,
}

impl ArrayDecl {
    /// Decode an address operand value into an element index.
    ///
    /// Returns `None` for addresses outside the array or not aligned to
    /// an element boundary.
    pub fn element_of(&self, addr: i64) -> Option<usize> {
        let off = addr.checked_sub(self.base)?;
        if off < 0 || off % self.elem_size != 0 {
            return None;
        }
        let idx = (off / self.elem_size) as usize;
        (idx < self.len).then_some(idx)
    }

    /// The address of an element index.
    pub fn address_of(&self, index: usize) -> i64 {
        self.base + index as i64 * self.elem_size
    }
}

/// A whole program: one flat CFG over typed virtual registers and arrays.
///
/// The front end inlines all calls, so a `Program` corresponds to the
/// paper's per-benchmark "3-address code" unit of analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (benchmark name).
    pub name: String,
    /// Type of each virtual register, indexed by [`Reg`].
    pub reg_types: Vec<Ty>,
    /// Declared arrays, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// The next unused instruction id (ids already used are `0..next`).
    pub next_inst_id: u32,
}

impl Program {
    /// The blocks of the program.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Look up a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable block lookup.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// The type of a register.
    pub fn reg_ty(&self, r: Reg) -> Ty {
        self.reg_types[r.index()]
    }

    /// Allocate a fresh register of the given type.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        let r = Reg(self.reg_types.len() as u32);
        self.reg_types.push(ty);
        r
    }

    /// Allocate a fresh instruction id.
    pub fn new_inst_id(&mut self) -> InstId {
        let id = InstId(self.next_inst_id);
        self.next_inst_id += 1;
        id
    }

    /// The declaration of an array.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// True if the array holds floats (drives `load` vs `fload` classes).
    pub fn array_is_float(&self, id: ArrayId) -> bool {
        self.arrays[id.index()].ty == Ty::Float
    }

    /// Find an array by source name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// The op class of an instruction in this program's context.
    pub fn class_of(&self, inst: &Inst) -> OpClass {
        inst.class_with(|a| self.array_is_float(a))
    }

    /// Iterate over every instruction with its containing block.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, &Inst)> {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter().map(move |i| (b.id, i)))
    }

    /// Total static instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Validate structural and type invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: dangling block/register/array
    /// references, malformed blocks, duplicate instruction ids, or operand
    /// type mismatches.
    pub fn validate(&self) -> Result<()> {
        if self.blocks.is_empty() {
            return Err(IrError::EmptyProgram);
        }
        if self.entry.index() >= self.blocks.len() {
            return Err(IrError::UnknownBlock(self.entry.0));
        }
        let mut seen_ids = HashSet::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            if !block.is_well_formed() {
                return Err(IrError::MalformedBlock(bi as u32));
            }
            for inst in &block.insts {
                if !seen_ids.insert(inst.id) {
                    return Err(IrError::DuplicateInstId(inst.id.0));
                }
                self.validate_inst(inst)?;
            }
        }
        Ok(())
    }

    fn check_reg(&self, r: Reg) -> Result<()> {
        if r.index() >= self.reg_types.len() {
            Err(IrError::UnknownReg(r.0))
        } else {
            Ok(())
        }
    }

    fn check_operand(&self, o: &Operand) -> Result<()> {
        if let Some(r) = o.reg() {
            self.check_reg(r)?;
        }
        Ok(())
    }

    fn operand_ty(&self, o: &Operand) -> Ty {
        match o {
            Operand::Reg(r) => self.reg_ty(*r),
            Operand::ImmInt(_) => Ty::Int,
            Operand::ImmFloat(_) => Ty::Float,
        }
    }

    fn validate_inst(&self, inst: &Inst) -> Result<()> {
        for o in inst.operands() {
            self.check_operand(&o)?;
        }
        if let Some(d) = inst.dst() {
            self.check_reg(d)?;
        }
        match &inst.kind {
            InstKind::Binary { op, dst, lhs, rhs } => {
                let want = if op.is_float() { Ty::Float } else { Ty::Int };
                for (side, o) in [("lhs", lhs), ("rhs", rhs)] {
                    if self.operand_ty(o) != want {
                        return Err(IrError::TypeMismatch {
                            inst: inst.id.0,
                            detail: format!("{op} expects {want} {side}"),
                        });
                    }
                }
                if self.reg_ty(*dst) != op.result_ty() {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: format!("{op} result must be {}", op.result_ty()),
                    });
                }
            }
            InstKind::Unary { op, dst, src } => {
                let src_ty = self.operand_ty(src);
                let want_src = match op {
                    crate::op::UnOp::Neg | crate::op::UnOp::Not => Some(Ty::Int),
                    crate::op::UnOp::FNeg | crate::op::UnOp::Math(_) => Some(Ty::Float),
                    crate::op::UnOp::IntToFloat => Some(Ty::Int),
                    crate::op::UnOp::FloatToInt => Some(Ty::Float),
                    crate::op::UnOp::Mov => None,
                };
                if let Some(w) = want_src {
                    if src_ty != w {
                        return Err(IrError::TypeMismatch {
                            inst: inst.id.0,
                            detail: format!("{op} expects {w} source"),
                        });
                    }
                }
                if self.reg_ty(*dst) != op.result_ty(src_ty) {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: format!("{op} result type mismatch"),
                    });
                }
            }
            InstKind::Load { dst, array, index } => {
                if array.index() >= self.arrays.len() {
                    return Err(IrError::UnknownArray(array.0));
                }
                if self.operand_ty(index) != Ty::Int {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: "load index must be int".into(),
                    });
                }
                if self.reg_ty(*dst) != self.arrays[array.index()].ty {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: "load destination type must match array element type".into(),
                    });
                }
            }
            InstKind::Store {
                array,
                index,
                value,
            } => {
                if array.index() >= self.arrays.len() {
                    return Err(IrError::UnknownArray(array.0));
                }
                if self.operand_ty(index) != Ty::Int {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: "store index must be int".into(),
                    });
                }
                if self.operand_ty(value) != self.arrays[array.index()].ty {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: "stored value type must match array element type".into(),
                    });
                }
            }
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            } => {
                if self.operand_ty(cond) != Ty::Int {
                    return Err(IrError::TypeMismatch {
                        inst: inst.id.0,
                        detail: "branch condition must be int".into(),
                    });
                }
                for t in [then_target, else_target] {
                    if t.index() >= self.blocks.len() {
                        return Err(IrError::UnknownBlock(t.0));
                    }
                }
            }
            InstKind::Jump { target } => {
                if target.index() >= self.blocks.len() {
                    return Err(IrError::UnknownBlock(target.0));
                }
            }
            InstKind::Ret { .. } => {}
            InstKind::Chained { .. } => {
                // chained super-ops are synthesized post-validation; their
                // operand types are guaranteed by the rewriter
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::BinOp;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let entry = b.entry_block();
        b.select_block(entry);
        let x = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        let _ = b.binary(BinOp::Mul, x.into(), Operand::imm_int(3));
        b.ret(None);
        b.finish().expect("valid")
    }

    #[test]
    fn validates_clean_program() {
        let p = tiny();
        assert!(p.validate().is_ok());
        assert_eq!(p.inst_count(), 3);
        assert_eq!(p.insts().count(), 3);
    }

    #[test]
    fn catches_type_mismatch() {
        let mut p = tiny();
        // change the add to fadd: int immediates now mismatch
        if let InstKind::Binary { op, .. } = &mut p.blocks[0].insts[0].kind {
            *op = BinOp::FAdd;
        }
        assert!(matches!(p.validate(), Err(IrError::TypeMismatch { .. })));
    }

    #[test]
    fn catches_dangling_block() {
        let mut p = tiny();
        p.blocks[0].insts.pop();
        p.blocks[0].insts.push(Inst::new(
            InstId(99),
            InstKind::Jump {
                target: BlockId(42),
            },
        ));
        assert_eq!(p.validate(), Err(IrError::UnknownBlock(42)));
    }

    #[test]
    fn catches_duplicate_ids() {
        let mut p = tiny();
        let dup = p.blocks[0].insts[0].clone();
        p.blocks[0].insts.insert(1, dup);
        assert!(matches!(p.validate(), Err(IrError::DuplicateInstId(_))));
    }

    #[test]
    fn catches_empty_program() {
        let p = Program {
            name: "empty".into(),
            reg_types: vec![],
            arrays: vec![],
            blocks: vec![],
            entry: BlockId(0),
            next_inst_id: 0,
        };
        assert_eq!(p.validate(), Err(IrError::EmptyProgram));
    }

    #[test]
    fn array_helpers() {
        let mut b = ProgramBuilder::new("arr");
        let a = b.input_array("x", Ty::Float, 8);
        let entry = b.entry_block();
        b.select_block(entry);
        let v = b.load(a, Operand::imm_int(0));
        let _ = b.binary(BinOp::FAdd, v.into(), Operand::imm_float(1.0));
        b.ret(None);
        let p = b.finish().expect("valid");
        assert!(p.array_is_float(a));
        assert_eq!(p.array_by_name("x"), Some(a));
        assert_eq!(p.array_by_name("nope"), None);
        assert_eq!(p.array(a).len, 8);
        assert_eq!(p.array(a).kind, ArrayKind::Input);
    }

    #[test]
    fn fresh_regs_and_ids_are_distinct() {
        let mut p = tiny();
        let r1 = p.new_reg(Ty::Int);
        let r2 = p.new_reg(Ty::Float);
        assert_ne!(r1, r2);
        assert_eq!(p.reg_ty(r2), Ty::Float);
        let i1 = p.new_inst_id();
        let i2 = p.new_inst_id();
        assert_ne!(i1, i2);
    }
}
