//! Machine-independent cleanup passes.
//!
//! The paper's front end (a modified gcc) emits reasonably clean 3-address
//! code; these passes bring our lowered IR to the same standard before it
//! is profiled and analyzed:
//!
//! - [`copy_propagate`] — local copy propagation through `mov`s;
//! - [`eliminate_dead_code`] — removal of pure instructions whose results
//!   are never observed;
//! - [`remove_unreachable_blocks`] — drops blocks the entry cannot reach;
//! - [`cleanup`] — the standard pipeline of all three, to fixpoint.

use crate::cfg::Cfg;
use crate::dataflow::Liveness;
use crate::inst::InstKind;
use crate::op::UnOp;
use crate::program::Program;
use crate::types::{BlockId, Operand, Reg};
use std::collections::HashMap;

/// Propagate copies (`mov d, s`) forward within each block, rewriting
/// later uses of `d` to `s`. Returns the number of operands rewritten.
///
/// A mapping is invalidated when either side is redefined.
pub fn copy_propagate(program: &mut Program) -> usize {
    let mut rewrites = 0;
    for block in &mut program.blocks {
        // reg -> replacement operand
        let mut map: HashMap<Reg, Operand> = HashMap::new();
        for inst in &mut block.insts {
            // rewrite uses first
            inst.map_uses(|r| r); // no-op; keeps the borrow simple below
            let mut replaced = false;
            let map_ref = &map;
            let rewrite = |o: Operand| -> Operand {
                if let Operand::Reg(r) = o {
                    if let Some(rep) = map_ref.get(&r) {
                        return *rep;
                    }
                }
                o
            };
            match &mut inst.kind {
                InstKind::Binary { lhs, rhs, .. } => {
                    let (l, r) = (rewrite(*lhs), rewrite(*rhs));
                    replaced = l != *lhs || r != *rhs;
                    *lhs = l;
                    *rhs = r;
                }
                InstKind::Unary { src, .. } => {
                    let s = rewrite(*src);
                    replaced = s != *src;
                    *src = s;
                }
                InstKind::Load { index, .. } => {
                    let i = rewrite(*index);
                    replaced = i != *index;
                    *index = i;
                }
                InstKind::Store { index, value, .. } => {
                    let (i, v) = (rewrite(*index), rewrite(*value));
                    replaced = i != *index || v != *value;
                    *index = i;
                    *value = v;
                }
                InstKind::Branch { cond, .. } => {
                    let c = rewrite(*cond);
                    replaced = c != *cond;
                    *cond = c;
                }
                InstKind::Ret { value: Some(v) } => {
                    let nv = rewrite(*v);
                    replaced = nv != *v;
                    *v = nv;
                }
                InstKind::Chained { inputs, .. } => {
                    for i in inputs.iter_mut() {
                        let ni = rewrite(*i);
                        if ni != *i {
                            replaced = true;
                        }
                        *i = ni;
                    }
                }
                _ => {}
            }
            if replaced {
                rewrites += 1;
            }
            // update the copy map
            if let Some(d) = inst.dst() {
                // any mapping reading d is now stale
                map.retain(|_, v| v.reg() != Some(d));
                map.remove(&d);
                if let InstKind::Unary {
                    op: UnOp::Mov, src, ..
                } = &inst.kind
                {
                    // only propagate type-preserving copies
                    let src_ty = match src {
                        Operand::Reg(r) => program.reg_types[r.index()],
                        Operand::ImmInt(_) => crate::types::Ty::Int,
                        Operand::ImmFloat(_) => crate::types::Ty::Float,
                    };
                    if src_ty == program.reg_types[d.index()] && *src != Operand::Reg(d) {
                        map.insert(d, *src);
                    }
                }
            }
        }
    }
    rewrites
}

/// Remove pure instructions whose destination is dead. Returns the number
/// of instructions removed.
pub fn eliminate_dead_code(program: &mut Program) -> usize {
    let cfg = Cfg::new(program);
    let liveness = Liveness::new(program, &cfg);
    let mut removed = 0;
    for bi in 0..program.blocks.len() {
        let block_id = BlockId(bi as u32);
        let mut live: std::collections::HashSet<Reg> =
            liveness.live_out(block_id).iter().copied().collect();
        let insts = &mut program.blocks[bi].insts;
        let mut keep = vec![true; insts.len()];
        for (idx, inst) in insts.iter().enumerate().rev() {
            let side_effect = inst.has_side_effects();
            let needed = match inst.dst() {
                Some(d) => live.contains(&d) || side_effect,
                None => true,
            };
            if needed {
                if let Some(d) = inst.dst() {
                    live.remove(&d);
                }
                for u in inst.uses() {
                    live.insert(u);
                }
            } else {
                keep[idx] = false;
                removed += 1;
            }
        }
        let mut it = keep.iter();
        insts.retain(|_| *it.next().expect("keep mask sized to insts"));
    }
    removed
}

/// Drop blocks unreachable from the entry, remapping block ids. Returns
/// the number of blocks removed.
pub fn remove_unreachable_blocks(program: &mut Program) -> usize {
    let cfg = Cfg::new(program);
    let reachable: Vec<bool> = (0..program.blocks.len())
        .map(|i| cfg.is_reachable(BlockId(i as u32)))
        .collect();
    let removed = reachable.iter().filter(|r| !**r).count();
    if removed == 0 {
        return 0;
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; program.blocks.len()];
    let mut next = 0u32;
    for (i, r) in reachable.iter().enumerate() {
        if *r {
            remap[i] = Some(BlockId(next));
            next += 1;
        }
    }
    let mut blocks = std::mem::take(&mut program.blocks);
    blocks.retain(|b| reachable[b.id.index()]);
    for b in &mut blocks {
        b.id = remap[b.id.index()].expect("kept block");
        for inst in &mut b.insts {
            inst.map_targets(|t| remap[t.index()].expect("edges only to reachable blocks"));
        }
    }
    program.entry = remap[program.entry.index()].expect("entry reachable");
    program.blocks = blocks;
    removed
}

/// Coalesce `t = op ...; mov d, t` into `d = op ...` when `t` is a
/// single-def, single-use temporary and `d` is untouched in between.
/// Returns the number of movs coalesced.
///
/// This is what makes lowered assignments like `i = i + 1` occupy one
/// 3-address instruction, as a real compiler front end would emit.
pub fn coalesce_copies(program: &mut Program) -> usize {
    use crate::dataflow::DefUse;
    let mut total = 0;
    loop {
        let du = DefUse::new(program);
        let mut applied = false;
        'blocks: for bi in 0..program.blocks.len() {
            let n = program.blocks[bi].insts.len();
            'movs: for mov_idx in 0..n {
                let (d, t) = match &program.blocks[bi].insts[mov_idx].kind {
                    InstKind::Unary {
                        op: UnOp::Mov,
                        dst,
                        src: Operand::Reg(s),
                    } if dst != s => (*dst, *s),
                    _ => continue,
                };
                if program.reg_types[d.index()] != program.reg_types[t.index()] {
                    continue;
                }
                // t must have exactly one def and one use (this mov)
                let defs = du.defs_of(t);
                let uses = du.uses_of(t);
                if defs.len() != 1 || uses.len() != 1 {
                    continue;
                }
                let def_loc = du.loc(defs[0]).expect("indexed");
                if def_loc.block != program.blocks[bi].id || def_loc.index >= mov_idx {
                    continue;
                }
                let def_inst = &program.blocks[bi].insts[def_loc.index];
                if def_inst.dst() != Some(t) || def_inst.has_side_effects() {
                    continue;
                }
                // d untouched between the def and the mov
                for mid in def_loc.index + 1..mov_idx {
                    let inst = &program.blocks[bi].insts[mid];
                    if inst.dst() == Some(d) || inst.uses().contains(&d) {
                        continue 'movs;
                    }
                }
                program.blocks[bi].insts[def_loc.index].set_dst(d);
                program.blocks[bi].insts.remove(mov_idx);
                total += 1;
                applied = true;
                break 'blocks;
            }
        }
        if !applied {
            return total;
        }
    }
}

/// Fold instructions whose operands are all immediate, rewriting them
/// into `mov dst, <constant>` (which copy propagation then dissolves).
/// Returns the number of instructions folded.
///
/// Folding uses the simulator's own evaluators, so a folded program is
/// observationally identical by construction. Only `Binary` and `Unary`
/// ops fold; control flow and memory are left alone (branch folding
/// would change block structure, which the profiler wants stable).
pub fn fold_constants(program: &mut Program) -> usize {
    use crate::types::Value;
    let mut folded = 0;
    for block in &mut program.blocks {
        for inst in &mut block.insts {
            let to_value = |o: &Operand| -> Option<Value> {
                match o {
                    Operand::ImmInt(v) => Some(Value::Int(*v)),
                    Operand::ImmFloat(v) => Some(Value::Float(*v)),
                    Operand::Reg(_) => None,
                }
            };
            let result = match &inst.kind {
                InstKind::Binary { op, lhs, rhs, dst } => to_value(lhs)
                    .zip(to_value(rhs))
                    .map(|(a, b)| (*dst, eval_const_binop(*op, a, b))),
                InstKind::Unary { op, src, dst } if !matches!(op, UnOp::Mov) => {
                    to_value(src).map(|v| (*dst, eval_const_unop(*op, v)))
                }
                _ => None,
            };
            if let Some((dst, value)) = result {
                // only fold finite floats: folding inf/NaN into an
                // immediate would round-trip poorly through text
                if let Value::Float(f) = value {
                    if !f.is_finite() {
                        continue;
                    }
                }
                let src = match value {
                    Value::Int(v) => Operand::ImmInt(v),
                    Value::Float(v) => Operand::ImmFloat(v),
                };
                inst.kind = InstKind::Unary {
                    op: UnOp::Mov,
                    dst,
                    src,
                };
                folded += 1;
            }
        }
    }
    folded
}

/// Constant evaluation for binary ops — mirrors the simulator semantics
/// (wrapping integers, zero-yielding division, masked shifts).
fn eval_const_binop(
    op: crate::op::BinOp,
    a: crate::types::Value,
    b: crate::types::Value,
) -> crate::types::Value {
    use crate::op::BinOp::*;
    use crate::types::Value;
    match op {
        Add => Value::Int(a.as_int().wrapping_add(b.as_int())),
        Sub => Value::Int(a.as_int().wrapping_sub(b.as_int())),
        Mul => Value::Int(a.as_int().wrapping_mul(b.as_int())),
        Div => Value::Int(if b.as_int() == 0 {
            0
        } else {
            a.as_int().wrapping_div(b.as_int())
        }),
        Rem => Value::Int(if b.as_int() == 0 {
            0
        } else {
            a.as_int().wrapping_rem(b.as_int())
        }),
        Shl => Value::Int(a.as_int().wrapping_shl((b.as_int() & 63) as u32)),
        Shr => Value::Int(a.as_int().wrapping_shr((b.as_int() & 63) as u32)),
        And => Value::Int(a.as_int() & b.as_int()),
        Or => Value::Int(a.as_int() | b.as_int()),
        Xor => Value::Int(a.as_int() ^ b.as_int()),
        CmpLt => Value::Int((a.as_int() < b.as_int()) as i64),
        CmpLe => Value::Int((a.as_int() <= b.as_int()) as i64),
        CmpGt => Value::Int((a.as_int() > b.as_int()) as i64),
        CmpGe => Value::Int((a.as_int() >= b.as_int()) as i64),
        CmpEq => Value::Int((a.as_int() == b.as_int()) as i64),
        CmpNe => Value::Int((a.as_int() != b.as_int()) as i64),
        FAdd => Value::Float(a.as_float() + b.as_float()),
        FSub => Value::Float(a.as_float() - b.as_float()),
        FMul => Value::Float(a.as_float() * b.as_float()),
        FDiv => Value::Float(a.as_float() / b.as_float()),
        FCmpLt => Value::Int((a.as_float() < b.as_float()) as i64),
        FCmpLe => Value::Int((a.as_float() <= b.as_float()) as i64),
        FCmpGt => Value::Int((a.as_float() > b.as_float()) as i64),
        FCmpGe => Value::Int((a.as_float() >= b.as_float()) as i64),
        FCmpEq => Value::Int((a.as_float() == b.as_float()) as i64),
        FCmpNe => Value::Int((a.as_float() != b.as_float()) as i64),
    }
}

/// Constant evaluation for unary ops (mov never reaches here).
fn eval_const_unop(op: UnOp, v: crate::types::Value) -> crate::types::Value {
    use crate::types::Value;
    match op {
        UnOp::Neg => Value::Int(v.as_int().wrapping_neg()),
        UnOp::Not => Value::Int(!v.as_int()),
        UnOp::FNeg => Value::Float(-v.as_float()),
        UnOp::Mov => v,
        UnOp::IntToFloat => Value::Float(v.as_int() as f64),
        UnOp::FloatToInt => Value::Int(v.as_float() as i64),
        UnOp::Math(m) => Value::Float(m.eval(v.as_float())),
    }
}

/// The standard cleanup pipeline, iterated to fixpoint (bounded).
pub fn cleanup(program: &mut Program) {
    remove_unreachable_blocks(program);
    for _ in 0..6 {
        let f = fold_constants(program);
        let a = copy_propagate(program);
        let b = eliminate_dead_code(program);
        let c = coalesce_copies(program);
        if f == 0 && a == 0 && b == 0 && c == 0 {
            break;
        }
    }
    debug_assert!(program.validate().is_ok());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::BinOp;
    use crate::types::Ty;

    #[test]
    fn copy_prop_rewrites_uses() {
        let mut b = ProgramBuilder::new("cp");
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        let c = b.new_reg(Ty::Int);
        b.mov_to(c, t.into());
        let u = b.binary(BinOp::Mul, c.into(), Operand::imm_int(3));
        b.ret(Some(u.into()));
        let mut p = b.finish().expect("valid");
        let n = copy_propagate(&mut p);
        assert!(n >= 1);
        // the multiply now reads t directly
        let mul = p
            .insts()
            .find_map(|(_, i)| match &i.kind {
                InstKind::Binary {
                    op: BinOp::Mul,
                    lhs,
                    ..
                } => Some(*lhs),
                _ => None,
            })
            .expect("mul present");
        assert_eq!(mul, Operand::Reg(t));
    }

    #[test]
    fn dce_removes_dead_movs_after_copy_prop() {
        let mut b = ProgramBuilder::new("dce");
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        let c = b.new_reg(Ty::Int);
        b.mov_to(c, t.into());
        let u = b.binary(BinOp::Mul, c.into(), Operand::imm_int(3));
        b.ret(Some(u.into()));
        let mut p = b.finish().expect("valid");
        cleanup(&mut p);
        // constant folding + copy prop + DCE collapse the whole chain
        // into `ret 9`
        assert_eq!(p.inst_count(), 1);
        assert!(matches!(
            p.blocks()[0].insts[0].kind,
            InstKind::Ret {
                value: Some(Operand::ImmInt(9))
            }
        ));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn dce_keeps_side_effects_and_live_values() {
        let mut b = ProgramBuilder::new("keep");
        let y = b.output_array("y", Ty::Int, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        b.store(y, Operand::imm_int(0), t.into());
        let _dead = b.binary(BinOp::Mul, Operand::imm_int(2), Operand::imm_int(2));
        b.ret(None);
        let mut p = b.finish().expect("valid");
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 1);
        assert_eq!(p.inst_count(), 3);
    }

    #[test]
    fn copy_prop_respects_redefinition() {
        // t = 1+2; c = t; t = 10+20; u = c*3  -- c must NOT become the new t
        let mut b = ProgramBuilder::new("redef");
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        let c = b.new_reg(Ty::Int);
        b.mov_to(c, t.into());
        b.binary_to(t, BinOp::Add, Operand::imm_int(10), Operand::imm_int(20));
        let u = b.binary(BinOp::Mul, c.into(), Operand::imm_int(3));
        b.ret(Some(u.into()));
        let mut p = b.finish().expect("valid");
        copy_propagate(&mut p);
        let mul_lhs = p
            .insts()
            .find_map(|(_, i)| match &i.kind {
                InstKind::Binary {
                    op: BinOp::Mul,
                    lhs,
                    ..
                } => Some(*lhs),
                _ => None,
            })
            .expect("mul");
        assert_eq!(mul_lhs, Operand::Reg(c), "stale copy must not propagate");
    }

    #[test]
    fn unreachable_blocks_are_removed_and_remapped() {
        let mut b = ProgramBuilder::new("unreach");
        let entry = b.entry_block();
        let dead = b.new_block();
        let tail = b.new_block();
        b.select_block(entry);
        b.jump(tail);
        b.select_block(dead);
        b.ret(None);
        b.select_block(tail);
        b.ret(None);
        let mut p = b.finish().expect("valid");
        let removed = remove_unreachable_blocks(&mut p);
        assert_eq!(removed, 1);
        assert_eq!(p.blocks().len(), 2);
        assert!(p.validate().is_ok());
        // the jump edge was remapped to the new id of `tail`
        assert_eq!(p.blocks()[0].successors(), vec![BlockId(1)]);
    }

    #[test]
    fn coalesce_rewrites_loop_update_shape() {
        // t = add i, 1 ; mov i, t  ==>  i = add i, 1
        let mut b = ProgramBuilder::new("co");
        let entry = b.entry_block();
        let next = b.new_block();
        b.select_block(entry);
        let i = b.new_reg(Ty::Int);
        b.mov_to(i, Operand::imm_int(0));
        let t = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        b.mov_to(i, t.into());
        b.jump(next);
        b.select_block(next);
        b.ret(Some(i.into()));
        let mut p = b.finish().expect("valid");
        let n = coalesce_copies(&mut p);
        assert_eq!(n, 1);
        // the add now writes i directly
        let add_dst = p
            .insts()
            .find_map(|(_, inst)| match &inst.kind {
                InstKind::Binary {
                    op: BinOp::Add,
                    dst,
                    ..
                } => Some(*dst),
                _ => None,
            })
            .expect("add present");
        assert_eq!(add_dst, i);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn coalesce_refuses_when_dst_read_in_between() {
        // t = add i, 1 ; u = mul i, 2 ; mov i, t — rewriting would clobber
        // the i that the mul reads
        let mut b = ProgramBuilder::new("no");
        let entry = b.entry_block();
        b.select_block(entry);
        let i = b.new_reg(Ty::Int);
        b.mov_to(i, Operand::imm_int(5));
        let t = b.binary(BinOp::Add, i.into(), Operand::imm_int(1));
        let u = b.binary(BinOp::Mul, i.into(), Operand::imm_int(2));
        b.mov_to(i, t.into());
        let s = b.binary(BinOp::Add, i.into(), u.into());
        b.ret(Some(s.into()));
        let mut p = b.finish().expect("valid");
        assert_eq!(coalesce_copies(&mut p), 0);
    }

    #[test]
    fn constant_folding_matches_simulator_semantics() {
        let mut b = ProgramBuilder::new("cf");
        let y = b.output_array("y", Ty::Int, 4);
        let entry = b.entry_block();
        b.select_block(entry);
        let a = b.binary(BinOp::Add, Operand::imm_int(2), Operand::imm_int(3));
        let m = b.binary(BinOp::Mul, a.into(), Operand::imm_int(0)); // not const yet
        let dz = b.binary(BinOp::Div, Operand::imm_int(7), Operand::imm_int(0));
        let sh = b.binary(BinOp::Shl, Operand::imm_int(1), Operand::imm_int(67));
        b.store(y, Operand::imm_int(0), m.into());
        b.store(y, Operand::imm_int(1), dz.into());
        b.store(y, Operand::imm_int(2), sh.into());
        b.ret(None);
        let mut p = b.finish().expect("valid");
        let n = fold_constants(&mut p);
        assert_eq!(
            n, 3,
            "add, div-by-zero and shift fold; mul waits for copy prop"
        );
        // after full cleanup the mul folds too (2+3=5, then 5*0=0)
        cleanup(&mut p);
        assert!(p.validate().is_ok());
        // division by zero folded to 0, shift amount masked (67 & 63 = 3)
        let stored: Vec<Operand> = p
            .insts()
            .filter_map(|(_, i)| match &i.kind {
                InstKind::Store { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(
            stored,
            vec![Operand::ImmInt(0), Operand::ImmInt(0), Operand::ImmInt(8)]
        );
    }

    #[test]
    fn folding_keeps_nonfinite_floats_symbolic() {
        let mut b = ProgramBuilder::new("inf");
        let y = b.output_array("y", Ty::Float, 1);
        let entry = b.entry_block();
        b.select_block(entry);
        let inf = b.binary(
            BinOp::FDiv,
            Operand::imm_float(1.0),
            Operand::imm_float(0.0),
        );
        b.store(y, Operand::imm_int(0), inf.into());
        b.ret(None);
        let mut p = b.finish().expect("valid");
        assert_eq!(fold_constants(&mut p), 0, "inf result stays an fdiv");
        assert!(p.insts().any(|(_, i)| matches!(
            i.kind,
            InstKind::Binary {
                op: BinOp::FDiv,
                ..
            }
        )));
    }

    #[test]
    fn cleanup_is_idempotent() {
        let mut b = ProgramBuilder::new("idem");
        let entry = b.entry_block();
        b.select_block(entry);
        let t = b.binary(BinOp::Add, Operand::imm_int(1), Operand::imm_int(2));
        let c = b.new_reg(Ty::Int);
        b.mov_to(c, t.into());
        b.ret(Some(c.into()));
        let mut p = b.finish().expect("valid");
        cleanup(&mut p);
        let once = p.clone();
        cleanup(&mut p);
        assert_eq!(p, once);
    }

    #[test]
    fn copy_prop_does_not_cross_type_changing_movs() {
        // mov between same-named registers of different types cannot occur
        // (mov preserves type), but an int immediate copied into a float
        // register must not replace float uses with an int immediate.
        let mut b = ProgramBuilder::new("ty");
        let entry = b.entry_block();
        b.select_block(entry);
        let f = b.new_reg(Ty::Float);
        b.mov_to(f, Operand::imm_float(2.0));
        let g = b.binary(BinOp::FAdd, f.into(), Operand::imm_float(1.0));
        b.ret(Some(g.into()));
        let mut p = b.finish().expect("valid");
        cleanup(&mut p);
        assert!(p.validate().is_ok());
    }
}
