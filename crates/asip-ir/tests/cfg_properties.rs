//! Property tests for the CFG analyses on randomly shaped graphs:
//! dominator-tree axioms, liveness sanity, and loop-forest consistency.

use asip_ir::{
    BinOp, BlockId, Cfg, Dominators, Liveness, LoopForest, Operand, Program, ProgramBuilder, Ty,
};
use proptest::prelude::*;

/// Build a random (but valid) CFG: `n` blocks, each ending in a branch
/// or jump to targets chosen by the recipe, with a little arithmetic in
/// each block so liveness has something to chew on.
fn build_cfg(n: usize, edges: &[(u8, u8)], rets: u8) -> Program {
    let mut b = ProgramBuilder::new("cfgprop");
    let blocks: Vec<BlockId> = (0..n).map(|_| b.new_block()).collect();
    // make block 0 the entry by construction order
    let r = b.new_reg(Ty::Int);
    for (i, &blk) in blocks.iter().enumerate() {
        b.select_block(blk);
        b.binary_to(r, BinOp::Add, r.into(), Operand::imm_int(i as i64 + 1));
        let (t1, t2) = edges[i % edges.len()];
        let t1 = BlockId((t1 as usize % n) as u32);
        let t2 = BlockId((t2 as usize % n) as u32);
        // some blocks return instead of branching, guaranteeing at least
        // one exit when `rets` selects this block
        if i == (rets as usize % n) {
            b.ret(Some(r.into()));
        } else if t1 == t2 {
            b.jump(t1);
        } else {
            let c = b.binary(BinOp::CmpLt, r.into(), Operand::imm_int(3));
            b.branch(c.into(), t1, t2);
        }
    }
    // entry is block 0 because it was created first
    b.finish_unchecked()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominator_axioms(
        n in 2usize..12,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        rets in any::<u8>(),
    ) {
        let p = build_cfg(n, &edges, rets);
        prop_assert!(p.validate().is_ok(), "generated CFG is structurally valid");
        let cfg = Cfg::new(&p);
        let dom = Dominators::new(&cfg);
        let entry = p.entry;

        // the entry dominates every reachable block
        for &blk in cfg.rpo() {
            prop_assert!(dom.dominates(entry, blk));
            // dominance is reflexive
            prop_assert!(dom.dominates(blk, blk));
        }
        // the immediate dominator of a non-entry reachable block is a
        // strict dominator and is itself reachable
        for &blk in cfg.rpo().iter().skip(1) {
            let idom = dom.idom(blk).expect("reachable blocks have idoms");
            prop_assert!(idom != blk);
            prop_assert!(dom.dominates(idom, blk));
            prop_assert!(cfg.is_reachable(idom));
        }
        // every CFG edge u->v: idom(v) dominates u (standard lemma:
        // a block's idom dominates all its predecessors... only when v
        // has multiple preds it's the common dominator; the safe axiom:
        // idom(v) dominates every reachable pred of v OR v == entry)
        for &v in cfg.rpo().iter().skip(1) {
            let idom = dom.idom(v).expect("reachable");
            for &u in cfg.preds(v) {
                if cfg.is_reachable(u) {
                    prop_assert!(
                        dom.dominates(idom, u),
                        "idom({v}) = {idom} must dominate pred {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn loop_forest_is_consistent(
        n in 2usize..12,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        rets in any::<u8>(),
    ) {
        let p = build_cfg(n, &edges, rets);
        let cfg = Cfg::new(&p);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        for l in forest.loops() {
            // the header is in the loop and dominates every member
            prop_assert!(l.contains(l.header));
            for &blk in &l.blocks {
                prop_assert!(dom.dominates(l.header, blk),
                    "header {} must dominate member {}", l.header, blk);
            }
            // every latch is a member with an edge to the header
            for &latch in &l.latches {
                prop_assert!(l.contains(latch));
                prop_assert!(cfg.succs(latch).contains(&l.header));
            }
            prop_assert!(l.depth >= 1);
        }
        // innermost loops enclose nothing
        for inner in forest.innermost() {
            for other in forest.loops() {
                prop_assert!(!inner.encloses(other));
            }
        }
    }

    #[test]
    fn liveness_is_a_fixpoint(
        n in 2usize..10,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..10),
        rets in any::<u8>(),
    ) {
        let p = build_cfg(n, &edges, rets);
        let cfg = Cfg::new(&p);
        let lv = Liveness::new(&p, &cfg);
        // live-out of a reachable block is the union of successors'
        // live-in (liveness is computed over the reachable subgraph)
        for block in p.blocks() {
            if !cfg.is_reachable(block.id) {
                continue;
            }
            let mut expect: std::collections::HashSet<_> = Default::default();
            for &s in cfg.succs(block.id) {
                expect.extend(lv.live_in(s).iter().copied());
            }
            prop_assert_eq!(lv.live_out(block.id), &expect);
        }
    }
}
