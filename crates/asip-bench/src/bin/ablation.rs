//! Ablation sweeps for the design choices called out in DESIGN.md:
//!
//! - chaining window `W ∈ {0,1,2,3}` vs detected coverage;
//! - pipelining unroll factor vs `add-multiply` exposure;
//! - issue width vs schedule length (weighted cycles);
//! - branch-and-bound prune floor vs surviving occurrence count.
//!
//! `cargo run --release -p asip-bench --bin ablation`

use asip_chains::{CoverageAnalyzer, DetectorConfig, SequenceDetector, Signature};
use asip_opt::{OptConfig, OptLevel, Optimizer};

fn main() {
    let reg = asip_benchmarks::registry();
    let bench = reg.find("sewha").expect("built-in");
    let program = bench.compile().expect("compiles");
    let profile = bench.profile(&program).expect("simulates");

    println!("== chaining window vs coverage (sewha, level 0) ==");
    let g0 = Optimizer::new(OptLevel::None).run(&program, &profile);
    for w in 0..=3 {
        let cov = CoverageAnalyzer::new(DetectorConfig::default().with_window(w))
            .analyze(&g0)
            .coverage();
        println!("  window {w}: coverage {cov:6.2}%");
    }

    println!();
    println!("== unroll factor vs add-multiply exposure (sewha, level 1) ==");
    let am: Signature = "add-multiply".parse().expect("parses");
    for unroll in [1usize, 2, 3, 4] {
        let g = Optimizer::new(OptLevel::Pipelined)
            .with_config(OptConfig {
                unroll,
                ..OptConfig::default()
            })
            .run(&program, &profile);
        let f = SequenceDetector::new(DetectorConfig::default())
            .analyze(&g)
            .frequency_of(&am);
        println!("  unroll {unroll}: add-multiply {f:6.2}%");
    }

    println!();
    println!("== issue width vs weighted schedule cycles (sewha, level 1) ==");
    let base_cycles = g0.weighted_cycles();
    println!("  sequential: {base_cycles:10.0} cycles");
    for width in [1usize, 2, 4, 8] {
        let g = Optimizer::new(OptLevel::Pipelined)
            .with_config(OptConfig {
                width,
                ..OptConfig::default()
            })
            .run(&program, &profile);
        println!(
            "  width {width}: {:10.0} cycles ({:.2}x vs sequential)",
            g.weighted_cycles(),
            base_cycles / g.weighted_cycles()
        );
    }

    println!();
    println!("== hoist passes vs detected sequence count (edge, level 1) ==");
    let edge = reg.find("edge").expect("built-in");
    let eprog = edge.compile().expect("compiles");
    let eprof = edge.profile(&eprog).expect("simulates");
    for hoist_passes in [0usize, 1, 2, 4] {
        let g = Optimizer::new(OptLevel::Pipelined)
            .with_config(OptConfig {
                hoist_passes,
                ..OptConfig::default()
            })
            .run(&eprog, &eprof);
        let n = SequenceDetector::new(DetectorConfig::default()).analyze(&g).len();
        println!("  hoist {hoist_passes}: {n} distinct sequences");
    }

    println!();
    println!("== prune floor vs surviving occurrences (sewha, level 1) ==");
    let g1 = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
    for floor in [0.0, 1.0, 2.0, 5.0, 10.0] {
        let n = SequenceDetector::new(DetectorConfig::default().with_prune_floor(floor))
            .occurrences(&g1)
            .len();
        println!("  floor {floor:4.1}%: {n} occurrences enumerated");
    }
}
