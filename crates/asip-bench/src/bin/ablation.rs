//! Ablation sweeps for the design choices called out in DESIGN.md:
//!
//! - chaining window `W ∈ {0,1,2,3}` vs detected coverage;
//! - pipelining unroll factor vs `add-multiply` exposure;
//! - issue width vs schedule length (weighted cycles);
//! - branch-and-bound prune floor vs surviving occurrence count;
//! - area budget vs the design-space stage's pareto frontier;
//! - pooled run-state reuse: a warm profile sweep is counter-asserted
//!   to perform zero per-run bank allocations.
//!
//! Every sweep runs on one `Explorer` session, so each benchmark is
//! compiled and simulated exactly once across all five studies — the
//! cache counters printed at the end prove it, and the design-space
//! sweep is counter-asserted to run the optimizer at most once per
//! distinct `(benchmark, level)` pair, never once per config.
//!
//! `cargo run --release -p asip-bench --bin ablation`

use asip_chains::{CoverageAnalyzer, DetectorConfig, SequenceDetector, Signature};
use asip_explorer::Explorer;
use asip_opt::{OptConfig, OptLevel};
use asip_synth::DesignConstraints;

fn main() {
    let session = asip_bench::with_shared_store(Explorer::new());

    println!("== chaining window vs coverage (sewha, level 0) ==");
    let g0 = session
        .schedule("sewha", OptLevel::None)
        .expect("built-ins schedule")
        .graph;
    for w in 0..=3 {
        let cov = CoverageAnalyzer::new(DetectorConfig::default().with_window(w))
            .analyze(&g0)
            .coverage();
        println!("  window {w}: coverage {cov:6.2}%");
    }

    println!();
    println!("== unroll factor vs add-multiply exposure (sewha, level 1) ==");
    let am: Signature = "add-multiply".parse().expect("parses");
    for unroll in [1usize, 2, 3, 4] {
        let analyzed = session
            .analyze_with(
                "sewha",
                OptLevel::Pipelined,
                OptConfig {
                    unroll,
                    ..OptConfig::default()
                },
                DetectorConfig::default(),
            )
            .expect("built-ins analyze");
        println!(
            "  unroll {unroll}: add-multiply {:6.2}%",
            analyzed.report.frequency_of(&am)
        );
    }

    println!();
    println!("== issue width vs weighted schedule cycles (sewha, level 1) ==");
    let base_cycles = g0.weighted_cycles();
    println!("  sequential: {base_cycles:10.0} cycles");
    for width in [1usize, 2, 4, 8] {
        let g = session
            .schedule_with(
                "sewha",
                OptLevel::Pipelined,
                OptConfig {
                    width,
                    ..OptConfig::default()
                },
            )
            .expect("built-ins schedule")
            .graph;
        println!(
            "  width {width}: {:10.0} cycles ({:.2}x vs sequential)",
            g.weighted_cycles(),
            base_cycles / g.weighted_cycles()
        );
    }

    println!();
    println!("== hoist passes vs detected sequence count (edge, level 1) ==");
    for hoist_passes in [0usize, 1, 2, 4] {
        let analyzed = session
            .analyze_with(
                "edge",
                OptLevel::Pipelined,
                OptConfig {
                    hoist_passes,
                    ..OptConfig::default()
                },
                DetectorConfig::default(),
            )
            .expect("built-ins analyze");
        println!(
            "  hoist {hoist_passes}: {} distinct sequences",
            analyzed.report.len()
        );
    }

    println!();
    println!("== prune floor vs surviving occurrences (sewha, level 1) ==");
    let g1 = session
        .schedule("sewha", OptLevel::Pipelined)
        .expect("built-ins schedule")
        .graph;
    for floor in [0.0, 1.0, 2.0, 5.0, 10.0] {
        let n = SequenceDetector::new(DetectorConfig::default().with_prune_floor(floor))
            .occurrences(&g1)
            .len();
        println!("  floor {floor:4.1}%: {n} occurrences enumerated");
    }

    println!();
    println!("== area budget vs pareto frontier (design-space stage) ==");
    let schedule_runs = session.cache_stats().schedule.misses;
    let budgets = [500.0, 1000.0, 2000.0, 4000.0];
    let grid: Vec<DesignConstraints> = budgets
        .iter()
        .map(|&area_budget| DesignConstraints {
            area_budget,
            ..DesignConstraints::default()
        })
        .collect();
    let spaced = session
        .design_space_with(&["sewha", "edge"], &grid, DetectorConfig::default())
        .expect("built-ins sweep");
    let defaults = DesignConstraints::default();
    for point in spaced
        .space
        .frontier_at(defaults.opt_level, defaults.clock_ns)
    {
        println!(
            "  frontier: area {:>7.0}, {} extensions, benefit {:6.2}%",
            point.area, point.extensions, point.benefit
        );
    }
    for (cons, design) in &spaced.space.configs {
        println!(
            "  budget {:>5.0}: {} extensions, area {:>7.0}",
            cons.area_budget,
            design.len(),
            design.extension_area
        );
    }
    // the sweep shares one schedule per distinct (benchmark, level)
    // pair across all four budgets — never one run per config
    let added = session.cache_stats().schedule.misses - schedule_runs;
    assert!(
        added <= 2,
        "a 4-budget sweep over 2 benchmarks runs the optimizer at most \
         once per distinct (benchmark, level) pair, ran {added} extra"
    );
    // a wider grid re-evaluates incrementally: the distinct pairs are
    // already cached, so zero further optimizer runs
    let wider: Vec<DesignConstraints> = (1..=8)
        .map(|step| DesignConstraints {
            area_budget: 500.0 * f64::from(step),
            ..DesignConstraints::default()
        })
        .collect();
    session
        .design_space_with(&["sewha", "edge"], &wider, DetectorConfig::default())
        .expect("built-ins sweep");
    assert_eq!(
        session.cache_stats().schedule.misses - schedule_runs,
        added,
        "widening the sweep adds no optimizer runs beyond the distinct pairs"
    );

    println!();
    println!("== design stage reuses the analyze-stage schedule ==");
    let schedule_runs = session.cache_stats().schedule.misses;
    let designed = session.design("sewha").expect("built-ins design");
    println!(
        "  sewha design: {} extensions selected, optimizer runs added: {}",
        designed.design.len(),
        session.cache_stats().schedule.misses - schedule_runs
    );
    assert_eq!(
        session.cache_stats().schedule.misses,
        schedule_runs,
        "the design stage must pull the cached schedule, not re-run the optimizer"
    );

    println!();
    println!("== pooled run states: warm sweeps allocate nothing ==");
    let engine = session.engine("sewha").expect("built-ins engine");
    let data = session
        .benchmark("sewha")
        .expect("registered")
        .dataset_with_seed(1995);
    engine.run_profile(&data).expect("warms the pool");
    let warm = session.cache_stats().run_state;
    const SWEEP: u64 = 256;
    for _ in 0..SWEEP {
        engine.run_profile(&data).expect("pooled profile run");
    }
    let swept = session.cache_stats().run_state;
    println!(
        "  {SWEEP} pooled profile runs: checkouts {} -> {}, bank allocations {} -> {}",
        warm.checkouts, swept.checkouts, warm.creates, swept.creates
    );
    assert_eq!(swept.checkouts, warm.checkouts + SWEEP);
    assert_eq!(
        swept.creates, warm.creates,
        "a warm profile sweep performs zero per-run bank allocations"
    );

    println!();
    let stats = session.cache_stats();
    asip_bench::print_cache_report(&session);
    println!("(a second run serves compile/profile/schedule from disk)");
    // Each of the two benchmarks is compiled and simulated exactly once
    // across all five studies: either this run computed it (a miss) or a
    // previous bench binary's run left it in the shared store (a disk
    // hit) — never both, never twice.
    assert_eq!(
        stats.compile.misses + stats.compile.disk_hits,
        2,
        "the whole ablation compiles each of its two benchmarks once"
    );
    assert_eq!(
        stats.profile.misses + stats.profile.disk_hits,
        2,
        "and simulates each once"
    );
}
