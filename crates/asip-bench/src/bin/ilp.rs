//! The paper's stated future work, implemented: characterize the
//! instruction-level parallelism of the application suite using the
//! compiler optimizations, as feedback for a *multiple-issue* ASIP.
//!
//! For each benchmark: schedule at issue widths 1/2/4/8/16 (level 1),
//! report achieved ops/cycle and speedup over scalar issue, and
//! recommend the width at the 95%-of-peak knee.
//!
//! `cargo run --release -p asip-bench --bin ilp`

use asip_explorer::Explorer;
use asip_opt::{characterize, OptLevel};

const WIDTHS: &[usize] = &[1, 2, 4, 8, 16];

fn main() {
    println!("ILP characterization (Pipelined schedules, widths 1/2/4/8/16)");
    println!();
    println!(
        "{:10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "benchmark", "w=1", "w=2", "w=4", "w=8", "w=16", "peak ILP", "rec. w"
    );
    println!("{:-^90}", "");
    let session = asip_bench::with_shared_store(Explorer::new());
    let rows = session
        .map_all(|b| {
            let compiled = session.compile(b.name)?;
            let profiled = session.profile(b.name)?;
            let report = characterize(
                &compiled.program,
                &profiled.profile,
                OptLevel::Pipelined,
                WIDTHS,
            );
            Ok((*b, report))
        })
        .expect("built-ins characterize cleanly");
    let mut recommended = Vec::new();
    for (b, report) in rows {
        let speedups: Vec<String> = report
            .points
            .iter()
            .map(|p| format!("{:.2}x", p.speedup_vs_scalar))
            .collect();
        let rec = report.recommended_width(0.95);
        recommended.push(rec);
        println!(
            "{:10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10.2} {:>9}",
            b.name,
            speedups[0],
            speedups[1],
            speedups[2],
            speedups[3],
            speedups[4],
            report.peak_ilp(),
            rec
        );
    }
    println!("{:-^90}", "");
    let mut hist = std::collections::BTreeMap::new();
    for r in recommended {
        *hist.entry(r).or_insert(0usize) += 1;
    }
    println!("recommended-width histogram (95%-of-peak knee): {hist:?}");
    println!("feedback to the designer: build the width most of the suite saturates at.");
}
