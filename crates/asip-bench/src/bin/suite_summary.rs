//! One-screen overview of the whole suite: static/dynamic sizes, peak
//! ILP, coverage at each level, and the closed-loop speedup — the
//! "dashboard" a designer would look at first.
//!
//! `cargo run --release -p asip-bench --bin suite_summary`

use asip_chains::{CoverageAnalyzer, DetectorConfig};
use asip_opt::{characterize, OptLevel, Optimizer};
use asip_synth::{evaluate, AsipDesigner, DesignConstraints};

fn main() {
    println!(
        "{:10} {:>6} {:>10} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "benchmark", "insts", "dyn ops", "ILP", "cov L0", "cov L1", "cov L2", "speedup"
    );
    println!("{:-^75}", "");
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    let designer = AsipDesigner::new(DesignConstraints::default());
    for b in asip_benchmarks::registry().iter() {
        let program = b.compile().expect("built-ins compile");
        let profile = b.profile(&program).expect("built-ins simulate");
        let ilp = characterize(&program, &profile, OptLevel::Pipelined, &[8]).peak_ilp();
        let cov: Vec<f64> = OptLevel::all()
            .into_iter()
            .map(|l| {
                analyzer
                    .analyze(&Optimizer::new(l).run(&program, &profile))
                    .coverage()
            })
            .collect();
        let design = designer.design_for(&program, &profile);
        let eval = evaluate(&program, &design, &b.dataset()).expect("evaluates");
        println!(
            "{:10} {:>6} {:>10} {:>6.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.3}x",
            b.name,
            program.inst_count(),
            profile.total_ops(),
            ilp,
            cov[0],
            cov[1],
            cov[2],
            eval.speedup
        );
    }
}
