//! One-screen overview of the whole suite: static/dynamic sizes, peak
//! ILP, coverage at each level, and the closed-loop speedup — the
//! "dashboard" a designer would look at first.
//!
//! One `Explorer` session drives everything: the twelve benchmarks are
//! explored in parallel, and each compile/profile/schedule runs once.
//!
//! `cargo run --release -p asip-bench --bin suite_summary`

use asip_chains::{CoverageAnalyzer, DetectorConfig};
use asip_explorer::Explorer;
use asip_opt::{characterize, OptLevel};

fn main() {
    println!(
        "{:10} {:>6} {:>10} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "benchmark", "insts", "dyn ops", "ILP", "cov L0", "cov L1", "cov L2", "speedup"
    );
    println!("{:-^75}", "");
    let session = asip_bench::with_shared_store(Explorer::new());
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    let rows = session
        .map_all(|b| {
            let compiled = session.compile(b.name)?;
            let profiled = session.profile(b.name)?;
            let ilp = characterize(
                &compiled.program,
                &profiled.profile,
                OptLevel::Pipelined,
                &[8],
            )
            .peak_ilp();
            let mut cov = Vec::new();
            for level in OptLevel::all() {
                let graph = session.schedule(b.name, level)?.graph;
                cov.push(analyzer.analyze(&graph).coverage());
            }
            let eval = session.evaluate(b.name)?;
            Ok((
                *b,
                compiled.program.inst_count(),
                profiled.profile.total_ops(),
                ilp,
                cov,
                eval.evaluation.speedup,
            ))
        })
        .expect("built-ins explore cleanly");
    for (b, insts, dyn_ops, ilp, cov, speedup) in rows {
        println!(
            "{:10} {:>6} {:>10} {:>6.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.3}x",
            b.name, insts, dyn_ops, ilp, cov[0], cov[1], cov[2], speedup
        );
    }
    println!("{:-^75}", "");

    // the deployment headline: one shared ASIP for the whole suite,
    // served by the cached suite stage (every compile/profile/schedule
    // above is a cache hit here)
    let suite = session
        .evaluate_suite()
        .expect("built-ins evaluate as a suite");
    let exts: Vec<String> = suite
        .design
        .extensions
        .iter()
        .map(|e| e.signature.to_string())
        .collect();
    match suite.geomean_speedup() {
        Some(g) => println!(
            "shared suite ASIP: {:.3}x geomean over {} benchmarks ({})",
            g,
            suite.benchmarks.len(),
            exts.join(", ")
        ),
        None => println!("shared suite ASIP: n/a (empty suite)"),
    }
    asip_bench::print_cache_report(&session);
}
