//! Regenerates the paper's **Figure 3** (length-2) and **Figure 4**
//! (length-4): combined sequence frequencies across all benchmarks,
//! sorted in decreasing order, one series per optimization level.
//!
//! `cargo run --release -p asip-bench --bin fig3_4 -- --length 2`
//! `cargo run --release -p asip-bench --bin fig3_4 -- --length 4`
//! (lengths 3 and 5 — omitted from the paper "to save space" — work too)

use asip_bench::{analyze_suite, bar, combined_reports, length_arg};
use asip_chains::DetectorConfig;
use asip_opt::OptLevel;

fn main() {
    let length = length_arg();
    let suite = analyze_suite(DetectorConfig::default().with_length(length));
    let combined = combined_reports(&suite);

    println!(
        "Figure {}: Length {length} sequences detected using three levels of optimization",
        if length == 2 {
            "3".to_string()
        } else if length == 4 {
            "4".to_string()
        } else {
            format!("3/4-style (length {length})")
        }
    );
    println!();

    // union of signatures, ordered by level-1 frequency (the paper sorts
    // each series; we present one table keyed to the Pipelined ordering
    // plus per-series sorted values below)
    let mut sigs: Vec<_> = combined[1]
        .of_length(length)
        .map(|(s, _)| s.clone())
        .collect();
    for r in [&combined[0], &combined[2]] {
        for (s, _) in r.of_length(length) {
            if !sigs.contains(s) {
                sigs.push(s.clone());
            }
        }
    }

    let max = combined
        .iter()
        .flat_map(|r| r.of_length(length).map(|(_, st)| st.frequency))
        .fold(0.0_f64, f64::max);

    println!(
        "{:34} {:>8} {:>8} {:>8}",
        "sequence", "level 0", "level 1", "level 2"
    );
    for sig in &sigs {
        let f: Vec<f64> = combined.iter().map(|r| r.frequency_of(sig)).collect();
        println!(
            "{:34} {:>7.2}% {:>7.2}% {:>7.2}%  {}",
            sig.to_string(),
            f[0],
            f[1],
            f[2],
            bar(f[1], max, 30)
        );
    }

    println!();
    for (k, level) in OptLevel::all().into_iter().enumerate() {
        let series: Vec<f64> = combined[k]
            .of_length(length)
            .map(|(_, st)| st.frequency)
            .collect();
        let head: Vec<String> = series.iter().take(12).map(|v| format!("{v:.2}")).collect();
        println!(
            "series \"{level}\": {} sequences, sorted head: [{}]",
            series.len(),
            head.join(", ")
        );
    }
}
