//! The CI perf-regression gate over the bench harness's JSON summary,
//! built on `asip_explorer::perf` (shared with the bench's own
//! end-of-run report).
//!
//! ```text
//! cargo bench --bench explore
//! cargo run --release -p asip-bench --bin perf -- check
//! cargo run --release -p asip-bench --bin perf -- update
//! ```
//!
//! - `check` diffs the current summary (default
//!   `target/asip-bench-explore.json`) against the blessed baseline
//!   (default `benches/baseline.json`), prints the comparison table,
//!   and exits **2** when any perf series regresses beyond the
//!   tolerance — so CI can gate on it after `cargo bench --bench
//!   explore`. Direction and noise rules are `asip_explorer::perf`'s:
//!   `*_ms` lower-is-better (with a 2 ms noise floor), `*_ops_per_sec`
//!   higher-is-better, everything else informational.
//! - `update` blesses the current summary as the new baseline
//!   (overwrites `benches/baseline.json`); run it after an intentional
//!   perf change and commit the file.
//!
//! The tolerance is `--tolerance PCT` or the `ASIP_PERF_TOLERANCE`
//! environment variable (percent; default 25). CI machines vary, so
//! its job passes a wider tolerance than the local default — see
//! `docs/perf.md` for the workflow.

use asip_explorer::perf;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: perf <check | update> [--baseline PATH] [--current PATH] [--tolerance PCT]");
    std::process::exit(1)
}

/// `crates/asip-bench` → two levels up is the workspace root.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut baseline = workspace_root().join("benches/baseline.json");
    let mut current = workspace_root().join("target/asip-bench-explore.json");
    let mut tolerance = match std::env::var("ASIP_PERF_TOLERANCE") {
        Ok(v) if !v.is_empty() => v.parse().unwrap_or_else(|_| {
            eprintln!("perf: ASIP_PERF_TOLERANCE must be a number, got `{v}`");
            std::process::exit(1)
        }),
        _ => perf::DEFAULT_TOLERANCE_PCT,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                baseline = PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage()));
                i += 2;
            }
            "--current" => {
                current = PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage()));
                i += 2;
            }
            "--tolerance" => {
                tolerance = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            cmd @ ("check" | "update") if command.is_none() => {
                command = Some(cmd.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };

    match command.as_str() {
        "update" => {
            let summary = match perf::load_summary(&current) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("perf: {e}");
                    eprintln!("perf: run `cargo bench --bench explore` first");
                    return ExitCode::FAILURE;
                }
            };
            let text = match std::fs::read_to_string(&current) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("perf: cannot re-read {}: {e}", current.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(&baseline, text) {
                eprintln!("perf: cannot write {}: {e}", baseline.display());
                return ExitCode::FAILURE;
            }
            println!(
                "blessed {} series from {} into {}",
                summary.series.len(),
                current.display(),
                baseline.display()
            );
            ExitCode::SUCCESS
        }
        "check" => {
            let base = match perf::load_summary(&baseline) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("perf: {e}");
                    eprintln!("perf: bless one with `perf update` and commit it");
                    return ExitCode::FAILURE;
                }
            };
            let cur = match perf::load_summary(&current) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("perf: {e}");
                    eprintln!("perf: run `cargo bench --bench explore` first");
                    return ExitCode::FAILURE;
                }
            };
            let comparison = perf::compare(&base, &cur, tolerance);
            println!("baseline: {}", baseline.display());
            println!("current:  {}", current.display());
            println!("{comparison}");
            if comparison.is_pass() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        _ => unreachable!("parser only admits check|update"),
    }
}
