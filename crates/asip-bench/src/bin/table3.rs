//! Regenerates the paper's **Table 3**: iterative greedy sequence
//! coverage with and without the parallelizing optimizations, for the
//! benchmarks the paper reports (sewha, feowf, bspline, edge, iir).
//!
//! `cargo run --release -p asip-bench --bin table3`
//! Pass `--all` to cover the whole suite.

use asip_chains::{CoverageAnalyzer, DetectorConfig};
use asip_explorer::Explorer;
use asip_opt::OptLevel;

/// Paper Table 3 coverage totals, for side-by-side reference.
const PAPER: &[(&str, f64, f64)] = &[
    ("sewha", 91.31, 31.99),
    ("feowf", 97.15, 75.66),
    ("bspline", 97.76, 33.33),
    ("edge", 85.35, 66.39),
    ("iir", 60.6, 38.59),
];

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let session = asip_bench::with_shared_store(Explorer::new());
    let names: Vec<&str> = if all {
        session.registry().iter().map(|b| b.name).collect()
    } else {
        PAPER.iter().map(|(n, _, _)| *n).collect()
    };

    println!("Table 3 - Sequence Coverage");
    println!();
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    let coverage_report = |name: &str, level: OptLevel| {
        let graph = session
            .schedule(name, level)
            .expect("built-ins schedule")
            .graph;
        analyzer.analyze(&graph)
    };
    for name in names {
        let paper = PAPER.iter().find(|(n, _, _)| *n == name);
        for (label, level) in [("yes", OptLevel::Pipelined), ("no", OptLevel::None)] {
            let report = coverage_report(name, level);
            let paper_cov = paper.map(|(_, y, n)| if label == "yes" { *y } else { *n });
            print!("{name:8} opt={label:3} coverage {:6.2}%", report.coverage());
            if let Some(pc) = paper_cov {
                print!("   (paper: {pc:5.2}%)");
            }
            println!();
            for e in &report.entries {
                println!(
                    "             {:34} {:>6.2}%",
                    e.signature.to_string(),
                    e.frequency
                );
            }
        }
        println!();
    }

    println!("shape check: optimized coverage >= unoptimized for the paper's benchmarks:");
    for (name, _, _) in PAPER {
        // pure cache hits: the graphs above are reused
        let yes = coverage_report(name, OptLevel::Pipelined).coverage();
        let no = coverage_report(name, OptLevel::None).coverage();
        println!(
            "  [{}] {name}: {yes:.2}% vs {no:.2}%",
            if yes >= no - 1e-9 { "ok" } else { "!!" }
        );
    }
    println!();
    asip_bench::print_cache_report(&session);
}
