//! Regenerates the paper's **Table 3**: iterative greedy sequence
//! coverage with and without the parallelizing optimizations, for the
//! benchmarks the paper reports (sewha, feowf, bspline, edge, iir).
//!
//! `cargo run --release -p asip-bench --bin table3`
//! Pass `--all` to cover the whole suite.

use asip_chains::{CoverageAnalyzer, DetectorConfig};
use asip_opt::{OptLevel, Optimizer};

/// Paper Table 3 coverage totals, for side-by-side reference.
const PAPER: &[(&str, f64, f64)] = &[
    ("sewha", 91.31, 31.99),
    ("feowf", 97.15, 75.66),
    ("bspline", 97.76, 33.33),
    ("edge", 85.35, 66.39),
    ("iir", 60.6, 38.59),
];

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let reg = asip_benchmarks::registry();
    let names: Vec<&str> = if all {
        reg.iter().map(|b| b.name).collect()
    } else {
        PAPER.iter().map(|(n, _, _)| *n).collect()
    };

    println!("Table 3 - Sequence Coverage");
    println!();
    let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
    for name in names {
        let b = reg.find(name).expect("benchmark exists");
        let program = b.compile().expect("built-ins compile");
        let profile = b.profile(&program).expect("built-ins simulate");
        let paper = PAPER.iter().find(|(n, _, _)| *n == name);
        for (label, level) in [("yes", OptLevel::Pipelined), ("no", OptLevel::None)] {
            let graph = Optimizer::new(level).run(&program, &profile);
            let report = analyzer.analyze(&graph);
            let paper_cov = paper.map(|(_, y, n)| if label == "yes" { *y } else { *n });
            print!("{name:8} opt={label:3} coverage {:6.2}%", report.coverage());
            if let Some(pc) = paper_cov {
                print!("   (paper: {pc:5.2}%)");
            }
            println!();
            for e in &report.entries {
                println!("             {:34} {:>6.2}%", e.signature.to_string(), e.frequency);
            }
        }
        println!();
    }

    println!("shape check: optimized coverage >= unoptimized for the paper's benchmarks:");
    for (name, _, _) in PAPER {
        let b = reg.find(name).expect("exists");
        let program = b.compile().expect("compiles");
        let profile = b.profile(&program).expect("simulates");
        let cov = |level| {
            analyzer
                .analyze(&Optimizer::new(level).run(&program, &profile))
                .coverage()
        };
        let yes = cov(OptLevel::Pipelined);
        let no = cov(OptLevel::None);
        println!(
            "  [{}] {name}: {yes:.2}% vs {no:.2}%",
            if yes >= no - 1e-9 { "ok" } else { "!!" }
        );
    }
}
