//! Regenerates the paper's **Table 2**: example detected sequences and
//! their combined dynamic frequencies at optimization levels 0, 1 and 2.
//!
//! `cargo run --release -p asip-bench --bin table2`

use asip_bench::{analyze_suite, combined_reports};
use asip_chains::{DetectorConfig, Signature};

/// The rows the paper's Table 2 reports, with its values for reference.
const PAPER_ROWS: &[(&str, [f64; 3])] = &[
    ("multiply-add", [5.6, 8.33, 9.10]),
    ("add-multiply", [2.25, 13.78, 9.06]),
    ("add-add", [7.64, 10.15, 8.67]),
    ("add-multiply-add", [3.38, 7.42, 5.95]),
    ("multiply-add-add", [2.03, 4.86, 7.40]),
];

fn main() {
    let suite = analyze_suite(DetectorConfig::default());
    let combined = combined_reports(&suite);

    println!("Table 2 - Detected sequence examples (across all benchmarks)");
    println!();
    println!(
        "{:22} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "", "ours", "", "", "paper", "", ""
    );
    println!(
        "{:22} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "Operation Sequence", "lvl 0", "lvl 1", "lvl 2", "lvl 0", "lvl 1", "lvl 2"
    );
    println!("{:-^80}", "");
    for (name, paper) in PAPER_ROWS {
        let sig: Signature = name.parse().expect("paper signature parses");
        let ours: Vec<f64> = combined.iter().map(|r| r.frequency_of(&sig)).collect();
        println!(
            "{:22} | {:>7.2}% {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}% {:>7.2}%",
            name, ours[0], ours[1], ours[2], paper[0], paper[1], paper[2]
        );
    }
    println!();
    println!("shape checks (the paper's qualitative claims):");
    let check = |label: &str, ok: bool| {
        println!("  [{}] {label}", if ok { "ok" } else { "!!" });
    };
    let freq = |k: usize, s: &str| combined[k].frequency_of(&s.parse().expect("parses"));
    check(
        "add-multiply is exposed by optimization (level 1 >> level 0)",
        freq(1, "add-multiply") > 1.5 * freq(0, "add-multiply"),
    );
    check(
        "register renaming reduces add-multiply (level 2 < level 1)",
        freq(2, "add-multiply") < freq(1, "add-multiply"),
    );
    check(
        "add-add rises with optimization (level 1 > level 0)",
        freq(1, "add-add") > freq(0, "add-add"),
    );
    check(
        "multiply-add (the MAC) is a top sequence at every level",
        (0..3).all(|k| {
            combined[k]
                .top(5)
                .any(|(s, _)| s.to_string() == "multiply-add")
        }),
    );
}
