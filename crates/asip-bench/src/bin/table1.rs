//! Regenerates the paper's **Table 1**: the benchmark inventory.
//!
//! `cargo run -p asip-bench --bin table1`

use asip_explorer::Explorer;

fn main() {
    println!("Table 1 : Benchmark Descriptions");
    println!("{:-^100}", "");
    println!(
        "{:10} {:>8} {:8}  {:44} Data Input",
        "Benchmark", "Lines C", "(ours)", "Description"
    );
    println!("{:-^100}", "");
    let session = asip_bench::with_shared_store(Explorer::new());
    for b in session.registry().iter() {
        let ours = b.source.lines().count();
        println!(
            "{:10} {:>8} {:>8}  {:44} {}",
            b.name, b.paper_lines, ours, b.description, b.data_description
        );
    }
    println!("{:-^100}", "");
    println!("\"Lines C\" is the count the paper reports for its C sources;");
    println!("\"(ours)\" counts the mini-C re-implementation in this repository.");
}
