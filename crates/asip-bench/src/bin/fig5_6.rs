//! Regenerates the paper's **Figure 5** (length-2) and **Figure 6**
//! (length-4): per-benchmark detected chainable sequences with dynamic
//! frequency at least 5%, at optimization level 1.
//!
//! `cargo run --release -p asip-bench --bin fig5_6 -- --length 2`
//! `cargo run --release -p asip-bench --bin fig5_6 -- --length 4`

use asip_bench::{analyze_suite, bar, length_arg};
use asip_chains::DetectorConfig;

/// The paper reports only sequences at or above this frequency.
const FLOOR: f64 = 5.0;

fn main() {
    let length = length_arg();
    let suite = analyze_suite(DetectorConfig::default().with_length(length));

    println!(
        "Figure {}: Detected chainable sequences of length {length} (>= {FLOOR}%, Pipelined)",
        if length == 2 { "5" } else { "6" }
    );
    println!();

    let max = suite
        .iter()
        .flat_map(|a| a.reports[1].at_least(FLOOR).map(|(_, st)| st.frequency))
        .fold(0.0_f64, f64::max);

    for a in &suite {
        let entries: Vec<_> = a.reports[1].at_least(FLOOR).collect();
        println!("{}:", a.bench.name);
        if entries.is_empty() {
            println!("    (no length-{length} sequence reaches {FLOOR}%)");
        }
        for (sig, st) in entries {
            println!(
                "    {:34} {:>6.2}%  {}",
                sig.to_string(),
                st.frequency,
                bar(st.frequency, max, 30)
            );
        }
    }
}
