//! Maintenance CLI for the shared on-disk artifact store, over the same
//! tier API the sessions use (`asip_explorer::store::ArtifactStore`).
//!
//! ```text
//! cargo run --release -p asip-bench --bin store -- stats
//! cargo run --release -p asip-bench --bin store -- gc [--max-bytes N[K|M|G]] [--max-age SECS]
//! cargo run --release -p asip-bench --bin store -- verify
//! cargo run --release -p asip-bench --bin store -- --remote ADDR ping
//! cargo run --release -p asip-bench --bin store -- --remote ADDR stats
//! ```
//!
//! The store location follows the bench convention (`target/asip-store`
//! under the workspace root, `ASIP_STORE` overrides) or an explicit
//! `--dir PATH`. With `--remote ADDR` (`host:port` or `unix:/path`) the
//! `ping` and `stats` commands run against a live `serve` daemon
//! instead of a local directory: `ping` probes liveness and prints the
//! server's version triple (exit code 2 when unreachable), `stats`
//! prints the daemon's request counters and tier totals.
//!
//! - `stats` prints the per-stage entry/byte accounting from the
//!   manifest-backed snapshot (rebuilding the index by scan when the
//!   manifest is missing or damaged).
//! - `gc` evicts oldest-written entries first until the given byte
//!   and/or age budgets hold, rewrites the manifest atomically, and
//!   prints a report. With no budget it only refreshes the manifest.
//! - `verify` walks every entry and validates it end to end (header,
//!   checksum, full typed decode); exit code 2 when anything is
//!   corrupt, so CI can gate on store health. Corrupt entries are left
//!   in place — sessions heal them on the next request — but `gc` or
//!   plain `rm` can be used to drop them eagerly.
//!
//! Every operation is safe against concurrent sessions: readers of a
//! GC'd entry degrade to a recompute, never to a wrong result.

use asip_explorer::artifact::Stage;
use asip_explorer::remote::{Endpoint, RemoteTier, RetryPolicy};
use asip_explorer::store::{ArtifactStore, StoreGcConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: store [--dir PATH] <stats | gc [--max-bytes N[K|M|G]] [--max-age SECS] | verify>\n       store --remote ADDR <ping | stats>"
    );
    std::process::exit(1)
}

/// Run `ping` or `stats` against a live `serve` daemon.
fn remote_command(addr: &str, command: &str) -> ExitCode {
    let endpoint = match Endpoint::parse(addr) {
        Ok(e) => e,
        Err(detail) => {
            eprintln!("store: invalid --remote address `{addr}`: {detail}");
            return ExitCode::from(1);
        }
    };
    let tier = RemoteTier::new(endpoint, RetryPolicy::default());
    match command {
        "ping" => match tier.ping() {
            Ok(info) => {
                println!(
                    "server at {} is alive: proto v{}, store format v{}, crate v{}",
                    tier.endpoint(),
                    info.proto_version,
                    info.format_version,
                    info.crate_version
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("store: ping {} failed: {e}", tier.endpoint());
                ExitCode::from(2)
            }
        },
        "stats" => match tier.server_stats() {
            Ok(s) => {
                println!("server at {}", tier.endpoint());
                println!(
                    "requests: {} ({} gets, {} batch keys, {} puts, {} contains, {} pings)",
                    s.requests, s.gets, s.batch_keys, s.puts, s.contains, s.pings
                );
                println!(
                    "served:   {} hits / {} misses, {} in, {} out, {} connections, {} frame errors",
                    s.hits,
                    s.misses,
                    asip_bench::human_bytes(s.bytes_in),
                    asip_bench::human_bytes(s.bytes_out),
                    s.connections,
                    s.frame_errors
                );
                let computes: Vec<String> = s
                    .stage_computes
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(name, n)| format!("{name}: {n}"))
                    .collect();
                if !computes.is_empty() {
                    println!("computes: {}", computes.join(", "));
                }
                for (name, t) in &s.tier_totals {
                    println!(
                        "{name:>14}: {}h/{}m/{}w — {} entries, {}",
                        t.hits,
                        t.misses,
                        t.writes,
                        t.entries,
                        asip_bench::human_bytes(t.bytes)
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("store: stats {} failed: {e}", tier.endpoint());
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("store: only `ping` and `stats` work with --remote");
            ExitCode::from(1)
        }
    }
}

/// Parse `N`, `NK`, `NM` or `NG` (binary units) into bytes.
fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, shift) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 10),
        'M' | 'm' => (&s[..s.len() - 1], 20),
        'G' | 'g' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits.parse::<u64>().ok()?.checked_shl(shift)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut remote: Option<String> = None;
    let mut command: Option<String> = None;
    let mut gc_config = StoreGcConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--remote" => {
                remote = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--max-bytes" => {
                let v = args.get(i + 1).and_then(|s| parse_bytes(s));
                gc_config.max_bytes = Some(v.unwrap_or_else(|| usage()));
                i += 2;
            }
            "--max-age" => {
                let v = args.get(i + 1).and_then(|s| s.parse().ok());
                gc_config.max_age = Some(Duration::from_secs(v.unwrap_or_else(|| usage())));
                i += 2;
            }
            cmd @ ("stats" | "gc" | "verify" | "ping") if command.is_none() => {
                command = Some(cmd.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };
    if let Some(addr) = remote {
        return remote_command(&addr, &command);
    }
    if command == "ping" {
        eprintln!("store: `ping` requires --remote ADDR");
        return ExitCode::from(1);
    }
    let dir = dir.or_else(asip_bench::store_dir).unwrap_or_else(|| {
        eprintln!("store: persistence is disabled via ASIP_STORE; pass --dir PATH");
        std::process::exit(1)
    });
    let store = ArtifactStore::open(&dir);
    println!("store: {}", dir.display());

    match command.as_str() {
        "stats" => {
            let manifest = store.snapshot();
            println!("{:>15} {:>8} {:>12}", "stage", "entries", "bytes");
            for stage in Stage::all() {
                let (entries, bytes) = manifest.stage_usage(stage);
                if entries > 0 {
                    println!(
                        "{:>15} {entries:>8} {:>12}",
                        stage.name(),
                        asip_bench::human_bytes(bytes)
                    );
                }
            }
            println!(
                "{:>15} {:>8} {:>12}",
                "total",
                manifest.len(),
                asip_bench::human_bytes(manifest.total_bytes())
            );
            println!(
                "manifest: {}",
                if store.manifest_path().is_file() {
                    "present"
                } else {
                    "absent (index rebuilt by scan)"
                }
            );
            ExitCode::SUCCESS
        }
        "gc" => {
            let report = store.gc(&gc_config);
            println!(
                "scanned  {} entries, {}",
                report.scanned_entries,
                asip_bench::human_bytes(report.scanned_bytes)
            );
            println!(
                "evicted  {} entries, {}",
                report.evicted_entries,
                asip_bench::human_bytes(report.evicted_bytes)
            );
            for stage in Stage::all() {
                let n = report.evicted_per_stage[stage as usize];
                if n > 0 {
                    println!("         - {}: {n}", stage.name());
                }
            }
            println!(
                "retained {} entries, {} (manifest rewritten)",
                report.retained_entries,
                asip_bench::human_bytes(report.retained_bytes)
            );
            ExitCode::SUCCESS
        }
        "verify" => {
            let report = store.verify();
            println!(
                "verified {} entries ({}): {} ok, {} corrupt",
                report.ok + report.corrupt,
                asip_bench::human_bytes(report.bytes),
                report.ok,
                report.corrupt
            );
            for stage in Stage::all() {
                let bad = report.corrupt_per_stage[stage as usize];
                if bad > 0 {
                    println!("         - {}: {bad} corrupt", stage.name());
                }
            }
            if report.corrupt > 0 {
                println!("corrupt entries recompute (and heal) on the next session request");
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
