//! The closed design loop of the paper's **Figure 1**, which the paper
//! describes but does not evaluate: compiler feedback chooses chained
//! ISA extensions, the code is rewritten to use them, and the ASIP's
//! cycle count is measured against the base processor.
//!
//! All scenarios run as cached session stages: per-benchmark designs
//! through `evaluate`, the paper's real deployment — one shared ASIP
//! tuned to the whole suite — through `evaluate_suite`, and an
//! area-budget sweep through the `design_space` stage's incremental
//! pareto-frontier search. Every design selects from the same cached
//! schedule the analyze stage reports, so the printed cache counters
//! show zero extra optimizer runs for the design work — sweep
//! included.
//!
//! `cargo run --release -p asip-bench --bin design_loop`

use asip_explorer::{geomean, Explorer};
use asip_synth::DesignConstraints;

fn print_geomean(label: &str, geo: Option<f64>) {
    match geo {
        Some(g) => println!("geometric-mean speedup ({label}): {g:.3}x"),
        None => println!("geometric-mean speedup ({label}): n/a (no benchmarks)"),
    }
}

fn main() {
    let constraints = DesignConstraints::default();
    let session = asip_bench::with_shared_store(Explorer::new().with_constraints(constraints));
    println!(
        "Design loop: area budget {:.0}, clock {:.0} ns, max {} extensions, feedback level: {}",
        constraints.area_budget,
        constraints.clock_ns,
        constraints.max_extensions,
        constraints.opt_level
    );
    println!();
    println!(
        "{:10} {:>9} {:>11} {:>11} {:>9} {:>7}  extensions",
        "benchmark", "area", "base cyc", "asip cyc", "speedup", "chains"
    );
    println!("{:-^100}", "");

    // per-benchmark designs: the design and evaluate stages fan out in
    // parallel over the session thread pool
    let rows = session
        .map_all(|b| session.evaluate(b.name))
        .expect("built-ins evaluate cleanly");
    let mut speedups = Vec::new();
    for evaluated in rows {
        let eval = &evaluated.evaluation;
        let exts: Vec<String> = evaluated
            .design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect();
        println!(
            "{:10} {:>9.0} {:>11} {:>11} {:>8.3}x {:>7}  {}",
            evaluated.benchmark.name,
            evaluated.design.extension_area,
            eval.base_cycles,
            eval.asip_cycles,
            eval.speedup,
            eval.fused_chains,
            exts.join(", ")
        );
        speedups.push(eval.speedup);
    }
    println!("{:-^100}", "");
    print_geomean("per-benchmark designs", geomean(speedups));

    // the paper's real scenario: ONE ASIP tuned to the whole suite,
    // now a first-class cached session stage
    println!();
    println!("one shared ASIP for the whole suite:");
    let suite = session
        .evaluate_suite()
        .expect("built-ins evaluate as a suite");
    print!(
        "{}",
        asip_synth::DesignReport::new(&suite.design, constraints.clock_ns)
    );
    for (name, eval) in suite.evaluations.iter() {
        println!(
            "  {:10} {:>8.3}x ({} chains fused)",
            name, eval.speedup, eval.fused_chains
        );
    }
    print_geomean("shared design", suite.geomean_speedup());

    // the design-space question behind the paper's single design point:
    // how does the shared-suite frontier move with the area budget? One
    // cached sweep answers it — and because the sweep reuses the exact
    // schedules the stages above already computed, it adds zero
    // optimizer runs beyond the distinct (benchmark, level) pairs.
    println!();
    println!("design-space sweep (suite frontier vs area budget):");
    let schedule_runs = session.cache_stats().schedule.misses;
    let grid: Vec<DesignConstraints> = [1500.0, 3000.0, 6000.0, 12000.0]
        .iter()
        .map(|&area_budget| DesignConstraints {
            area_budget,
            ..constraints
        })
        .collect();
    let spaced = session.design_space(&grid).expect("built-ins sweep");
    for point in spaced
        .space
        .frontier_at(constraints.opt_level, constraints.clock_ns)
    {
        println!(
            "  frontier: area {:>8.0}, {} extensions, benefit {:6.2}%",
            point.area, point.extensions, point.benefit
        );
    }
    for (cons, design) in &spaced.space.configs {
        println!(
            "  budget {:>6.0}: {} extensions selected, area {:>8.0}",
            cons.area_budget,
            design.len(),
            design.extension_area
        );
    }
    assert_eq!(
        session.cache_stats().schedule.misses,
        schedule_runs,
        "the sweep adds no optimizer runs beyond the distinct (benchmark, level) pairs"
    );

    // robustness re-measurement over fresh input seeds, batched through
    // one pooled run state per benchmark (`Engine::run_batch`): the
    // shared design's speedups hold beyond the seed it was tuned on
    println!();
    println!("seed robustness (batched re-measurement, 4 fresh seeds):");
    let before = session.cache_stats().run_state;
    for name in suite.benchmarks.iter() {
        let bench = session.benchmark(name).expect("registered");
        let datasets: Vec<_> = (1..=4u64).map(|s| bench.dataset_with_seed(s)).collect();
        let refs: Vec<&_> = datasets.iter().collect();
        let base = session
            .engine(name)
            .expect("cached engine")
            .run_batch(&refs)
            .expect("base batch runs");
        let asip = session
            .prepared(name, &suite.design)
            .expect("cached rewritten engine")
            .engine()
            .run_batch(&refs)
            .expect("asip batch runs");
        let speedups: Vec<f64> = base
            .iter()
            .zip(&asip)
            .map(|(b, a)| b.profile.total_ops() as f64 / a.profile.total_ops().max(1) as f64)
            .collect();
        println!(
            "  {:10} {:>8.3}x geomean over {} seeds",
            name,
            geomean(speedups.clone()).unwrap_or(1.0),
            speedups.len()
        );
        assert!(
            speedups.iter().all(|s| *s >= 1.0),
            "{name}: the shared design must never slow a member down"
        );
    }
    let after = session.cache_stats().run_state;
    // each benchmark ran 2 batches = 2 checkouts; the batches reuse one
    // state across their 4 datasets instead of allocating per run
    assert_eq!(
        after.checkouts - before.checkouts,
        2 * suite.benchmarks.len() as u64,
        "one run-state checkout per batch, not per dataset"
    );
    println!();
    asip_bench::print_cache_report(&session);
}
