//! The closed design loop of the paper's **Figure 1**, which the paper
//! describes but does not evaluate: compiler feedback chooses chained
//! ISA extensions, the code is rewritten to use them, and the ASIP's
//! cycle count is measured against the base processor.
//!
//! `cargo run --release -p asip-bench --bin design_loop`

use asip_explorer::Explorer;
use asip_synth::{evaluate, AsipDesigner, DesignConstraints};

fn main() {
    let constraints = DesignConstraints::default();
    let session = Explorer::new().with_constraints(constraints);
    println!(
        "Design loop: area budget {:.0}, clock {:.0} ns, max {} extensions, feedback level: {}",
        constraints.area_budget,
        constraints.clock_ns,
        constraints.max_extensions,
        constraints.opt_level
    );
    println!();
    println!(
        "{:10} {:>9} {:>11} {:>11} {:>9} {:>7}  extensions",
        "benchmark", "area", "base cyc", "asip cyc", "speedup", "chains"
    );
    println!("{:-^100}", "");

    // per-benchmark designs: the design and evaluate stages fan out in
    // parallel over the session thread pool
    let rows = session
        .map_all(|b| session.evaluate(b.name))
        .expect("built-ins evaluate cleanly");
    let mut speedups = Vec::new();
    for evaluated in rows {
        let eval = &evaluated.evaluation;
        let exts: Vec<String> = evaluated
            .design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect();
        println!(
            "{:10} {:>9.0} {:>11} {:>11} {:>8.3}x {:>7}  {}",
            evaluated.benchmark.name,
            evaluated.design.extension_area,
            eval.base_cycles,
            eval.asip_cycles,
            eval.speedup,
            eval.fused_chains,
            exts.join(", ")
        );
        speedups.push(eval.speedup);
    }
    println!("{:-^100}", "");
    let geo: f64 = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    println!(
        "geometric-mean speedup (per-benchmark designs): {:.3}x",
        geo.exp()
    );

    // the paper's real scenario: ONE ASIP tuned to the whole suite.
    // The programs and profiles are cache hits from the session.
    println!();
    println!("one shared ASIP for the whole suite:");
    let artifacts = session
        .map_all(|b| Ok((session.compile(b.name)?, session.profile(b.name)?)))
        .expect("built-ins compile and profile");
    let refs: Vec<(&asip_ir::Program, &asip_sim::Profile)> = artifacts
        .iter()
        .map(|(c, p)| (c.program.as_ref(), p.profile.as_ref()))
        .collect();
    let shared = AsipDesigner::new(constraints).design_for_suite(&refs);
    print!(
        "{}",
        asip_synth::DesignReport::new(&shared, constraints.clock_ns)
    );
    let mut shared_speedups = Vec::new();
    for (compiled, _) in &artifacts {
        let b = compiled.benchmark;
        let eval = evaluate(
            &compiled.program,
            &shared,
            &b.dataset_with_seed(session.seed()),
        )
        .expect("evaluates");
        shared_speedups.push(eval.speedup);
        println!(
            "  {:10} {:>8.3}x ({} chains fused)",
            b.name, eval.speedup, eval.fused_chains
        );
    }
    let geo: f64 =
        shared_speedups.iter().map(|s| s.ln()).sum::<f64>() / shared_speedups.len() as f64;
    println!("geometric-mean speedup (shared design): {:.3}x", geo.exp());
    println!();
    println!("session cache: {}", session.cache_stats());
}
