//! The closed design loop of the paper's **Figure 1**, which the paper
//! describes but does not evaluate: compiler feedback chooses chained
//! ISA extensions, the code is rewritten to use them, and the ASIP's
//! cycle count is measured against the base processor.
//!
//! `cargo run --release -p asip-bench --bin design_loop`

use asip_synth::{evaluate, AsipDesigner, DesignConstraints};

fn main() {
    let constraints = DesignConstraints::default();
    let designer = AsipDesigner::new(constraints);
    println!(
        "Design loop: area budget {:.0}, clock {:.0} ns, max {} extensions, feedback level: {}",
        constraints.area_budget,
        constraints.clock_ns,
        constraints.max_extensions,
        constraints.opt_level
    );
    println!();
    println!(
        "{:10} {:>9} {:>11} {:>11} {:>9} {:>7}  extensions",
        "benchmark", "area", "base cyc", "asip cyc", "speedup", "chains"
    );
    println!("{:-^100}", "");

    let mut speedups = Vec::new();
    for b in asip_benchmarks::registry().iter() {
        let program = b.compile().expect("built-ins compile");
        let profile = b.profile(&program).expect("built-ins simulate");
        let design = designer.design_for(&program, &profile);
        let eval = evaluate(&program, &design, &b.dataset()).expect("evaluates");
        let exts: Vec<String> = design
            .extensions
            .iter()
            .map(|e| e.signature.to_string())
            .collect();
        println!(
            "{:10} {:>9.0} {:>11} {:>11} {:>8.3}x {:>7}  {}",
            b.name,
            design.extension_area,
            eval.base_cycles,
            eval.asip_cycles,
            eval.speedup,
            eval.fused_chains,
            exts.join(", ")
        );
        speedups.push(eval.speedup);
    }
    println!("{:-^100}", "");
    let geo: f64 = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    println!("geometric-mean speedup (per-benchmark designs): {:.3}x", geo.exp());

    // the paper's real scenario: ONE ASIP tuned to the whole suite
    println!();
    println!("one shared ASIP for the whole suite:");
    let compiled: Vec<_> = asip_benchmarks::registry()
        .iter()
        .map(|b| {
            let program = b.compile().expect("compiles");
            let profile = b.profile(&program).expect("simulates");
            (*b, program, profile)
        })
        .collect();
    let refs: Vec<(&asip_ir::Program, &asip_sim::Profile)> =
        compiled.iter().map(|(_, p, pr)| (p, pr)).collect();
    let shared = designer.design_for_suite(&refs);
    print!(
        "{}",
        asip_synth::DesignReport::new(&shared, constraints.clock_ns)
    );
    let mut shared_speedups = Vec::new();
    for (b, program, _) in &compiled {
        let eval = evaluate(program, &shared, &b.dataset()).expect("evaluates");
        shared_speedups.push(eval.speedup);
        println!("  {:10} {:>8.3}x ({} chains fused)", b.name, eval.speedup, eval.fused_chains);
    }
    let geo: f64 =
        shared_speedups.iter().map(|s| s.ln()).sum::<f64>() / shared_speedups.len() as f64;
    println!("geometric-mean speedup (shared design): {:.3}x", geo.exp());
}
