//! Export every figure/table series as CSV under `figures/`, so the
//! paper's plots can be regenerated with any plotting tool.
//!
//! One `Explorer` session backs all six exports: the length-2,
//! length-4 and default-detector analyses share every compile,
//! simulation and schedule.
//!
//! `cargo run --release -p asip-bench --bin export_csv [-- --out DIR]`
//!
//! Files written:
//! - `fig3_len2.csv`, `fig4_len4.csv` — combined sorted series per level;
//! - `fig5_len2.csv`, `fig6_len4.csv` — per-benchmark sequences ≥ 5%;
//! - `table2.csv` — the example-sequence rows at levels 0/1/2;
//! - `table3.csv` — coverage entries per benchmark, with/without opt.

use asip_bench::{analyze_suite_with, combined_reports};
use asip_chains::{CoverageAnalyzer, DetectorConfig};
use asip_explorer::Explorer;
use asip_opt::OptLevel;
use std::fmt::Write as _;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "figures".to_string());
    PathBuf::from(dir)
}

fn main() -> std::io::Result<()> {
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let session = asip_bench::with_shared_store(Explorer::new());

    // Figures 3/4 + 5/6 share the suite analysis per length
    for (len, fig) in [(2usize, "fig3_len2"), (4, "fig4_len4")] {
        let suite = analyze_suite_with(&session, DetectorConfig::default().with_length(len));
        let combined = combined_reports(&suite);
        let mut csv = String::from("sequence,level0,level1,level2\n");
        let mut sigs: Vec<_> = combined[1].of_length(len).map(|(s, _)| s.clone()).collect();
        for r in [&combined[0], &combined[2]] {
            for (s, _) in r.of_length(len) {
                if !sigs.contains(s) {
                    sigs.push(s.clone());
                }
            }
        }
        for sig in sigs {
            writeln!(
                csv,
                "{sig},{:.4},{:.4},{:.4}",
                combined[0].frequency_of(&sig),
                combined[1].frequency_of(&sig),
                combined[2].frequency_of(&sig)
            )
            .expect("string write");
        }
        std::fs::write(dir.join(format!("{fig}.csv")), csv)?;

        // per-benchmark ≥5% (figures 5/6)
        let mut csv = String::from("benchmark,sequence,frequency\n");
        for a in &suite {
            for (sig, st) in a.reports[1].at_least(5.0) {
                writeln!(csv, "{},{sig},{:.4}", a.bench.name, st.frequency).expect("string write");
            }
        }
        let name = if len == 2 { "fig5_len2" } else { "fig6_len4" };
        std::fs::write(dir.join(format!("{name}.csv")), csv)?;
    }

    // Table 2 (default detector; compiles and schedules are cache hits)
    {
        let suite = analyze_suite_with(&session, DetectorConfig::default());
        let combined = combined_reports(&suite);
        let mut csv = String::from("sequence,level0,level1,level2\n");
        for row in [
            "multiply-add",
            "add-multiply",
            "add-add",
            "add-multiply-add",
            "multiply-add-add",
        ] {
            let sig = row.parse().expect("parses");
            writeln!(
                csv,
                "{row},{:.4},{:.4},{:.4}",
                combined[0].frequency_of(&sig),
                combined[1].frequency_of(&sig),
                combined[2].frequency_of(&sig)
            )
            .expect("string write");
        }
        std::fs::write(dir.join("table2.csv"), csv)?;
    }

    // Table 3
    {
        let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
        let mut csv = String::from("benchmark,optimized,sequence,frequency\n");
        for b in session.registry().iter().copied().collect::<Vec<_>>() {
            for (label, level) in [("yes", OptLevel::Pipelined), ("no", OptLevel::None)] {
                let graph = session
                    .schedule(b.name, level)
                    .expect("built-ins schedule")
                    .graph;
                let report = analyzer.analyze(&graph);
                for e in &report.entries {
                    writeln!(csv, "{},{label},{},{:.4}", b.name, e.signature, e.frequency)
                        .expect("string write");
                }
            }
        }
        std::fs::write(dir.join("table3.csv"), csv)?;
    }

    println!("wrote figure data to {}", dir.display());
    asip_bench::print_cache_report(&session);
    println!(
        "(rerun this binary — or any other bench binary — to see the whole pipeline served \
         from disk)"
    );
    Ok(())
}
