//! Inspection tool: dump a benchmark's 3-address code, its scheduled
//! program graph at any optimization level, or its dynamic op-class mix.
//!
//! ```text
//! cargo run -p asip-bench --bin dump -- fir            # 3-address code
//! cargo run -p asip-bench --bin dump -- fir --level 1  # schedule graph
//! cargo run -p asip-bench --bin dump -- fir --mix      # dynamic class mix
//! ```

use asip_explorer::{Explorer, ExplorerError};
use asip_opt::OptLevel;
use asip_sim::{ClassMix, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("fir");
    let session = asip_bench::with_shared_store(Explorer::new());
    let compiled = match session.compile(name) {
        Ok(c) => c,
        Err(ExplorerError::UnknownBenchmark { .. }) => {
            eprintln!(
                "unknown benchmark `{name}`; available: {}",
                session
                    .registry()
                    .iter()
                    .map(|b| b.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
        Err(e) => panic!("built-ins compile: {e}"),
    };

    if args.iter().any(|a| a == "--mix") {
        let mut mix = ClassMix::for_program(&compiled.program);
        Simulator::new(&compiled.program)
            .run_traced(&compiled.benchmark.dataset(), &mut mix)
            .expect("built-ins simulate");
        let total: u64 = mix.counts().values().sum();
        println!("dynamic op-class mix for {name} ({total} ops):");
        let mut rows: Vec<_> = mix.counts().iter().collect();
        rows.sort_by_key(|(_, &c)| std::cmp::Reverse(c));
        for (class, count) in rows {
            println!(
                "  {class:12} {count:>10}  ({:5.2}%)",
                100.0 * *count as f64 / total as f64
            );
        }
        return;
    }

    let level = args
        .windows(2)
        .find(|w| w[0] == "--level")
        .and_then(|w| w[1].parse::<u8>().ok());
    match level {
        None => print!("{}", compiled.program),
        Some(n) => {
            let level = match n {
                0 => OptLevel::None,
                1 => OptLevel::Pipelined,
                _ => OptLevel::PipelinedRenamed,
            };
            let scheduled = session.schedule(name, level).expect("built-ins schedule");
            print!("{}", scheduled.graph);
        }
    }
}
