//! Exploration-as-a-service daemon: park one warm [`Explorer`] session
//! (full tier stack resident) behind a socket and serve artifact
//! operations to every client on the network.
//!
//! ```text
//! cargo run --release -p asip-bench --bin serve                  # daemon on 127.0.0.1:4995
//! cargo run --release -p asip-bench --bin serve -- --addr unix:/tmp/asip.sock
//! cargo run --release -p asip-bench --bin serve -- --check ADDR  # end-to-end client check
//! cargo run --release -p asip-bench --bin serve -- --stop ADDR   # clean remote shutdown
//! ```
//!
//! **Daemon mode** (default) opens the shared bench store (`--store
//! PATH` overrides the usual `ASIP_STORE` convention), warms it with a
//! full `explore_all` pass unless `--no-warm` is given, binds `--addr`
//! (default `127.0.0.1:4995`; `host:0` picks an ephemeral port and
//! prints it) and serves until a client sends the `shutdown` op
//! (`serve --stop ADDR`). Shutdown drains in-flight connections and
//! flushes the store manifest.
//!
//! **Check mode** (`--check ADDR`) is the CI smoke path: it runs
//! `explore_all` on two consecutive *storeless* client sessions against
//! the daemon and requires the second to perform zero recomputes with
//! every artifact served as a remote hit. Exit code 3 when the
//! guarantee does not hold, so CI gates on it.
//!
//! **Stop mode** (`--stop ADDR`) asks the daemon to shut down cleanly;
//! exit code 2 when no daemon answers.

use asip_explorer::remote::{serve, Endpoint, RemoteTier, RetryPolicy, ServeOptions};
use asip_explorer::Explorer;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// The default daemon address; the port nods to the paper's year.
const DEFAULT_ADDR: &str = "127.0.0.1:4995";

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr ADDR] [--store PATH] [--no-warm]\n       serve --check ADDR\n       serve --stop ADDR"
    );
    std::process::exit(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut store: Option<PathBuf> = None;
    let mut warm = true;
    let mut check: Option<String> = None;
    let mut stop: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--store" => {
                store = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--no-warm" => {
                warm = false;
                i += 1;
            }
            "--check" => {
                check = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--stop" => {
                stop = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    if let Some(addr) = check {
        return run_check(&addr);
    }
    if let Some(addr) = stop {
        return run_stop(&addr);
    }
    run_daemon(&addr, store, warm)
}

fn run_daemon(addr: &str, store: Option<PathBuf>, warm: bool) -> ExitCode {
    let endpoint = match Endpoint::parse(addr) {
        Ok(e) => e,
        Err(detail) => {
            eprintln!("serve: invalid --addr `{addr}`: {detail}");
            return ExitCode::from(1);
        }
    };
    let dir = store.or_else(asip_bench::store_dir);
    let Some(dir) = dir else {
        eprintln!("serve: persistence is disabled via ASIP_STORE; pass --store PATH");
        eprintln!("       (a storeless daemon has no persistent tier to serve from)");
        return ExitCode::from(1);
    };
    let session = Arc::new(Explorer::new().with_store(&dir));
    println!("store: {}", dir.display());
    if warm {
        print!("warming the stack with explore_all … ");
        match session.explore_all() {
            Ok(explorations) => println!("{} benchmarks ready", explorations.len()),
            Err(e) => {
                eprintln!("serve: warm-up failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let handle = match serve(Arc::clone(&session), &endpoint, ServeOptions::default()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind {endpoint}: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "serving on {} (stop with: serve --stop {0})",
        handle.endpoint()
    );
    let stats = handle.join();
    println!(
        "served {} requests over {} connections: {} hits / {} misses, {} in, {} out, {} frame errors",
        stats.requests,
        stats.connections,
        stats.hits,
        stats.misses,
        asip_bench::human_bytes(stats.bytes_in),
        asip_bench::human_bytes(stats.bytes_out),
        stats.frame_errors,
    );
    asip_bench::print_cache_report(&session);
    ExitCode::SUCCESS
}

/// One storeless client pass: `explore_all` against the daemon only.
/// Returns the session for counter inspection, or an error string.
fn client_pass(addr: &str) -> Result<Explorer, String> {
    let session = Explorer::new()
        .with_remote(addr, RetryPolicy::default())
        .map_err(|e| e.to_string())?;
    let explorations = session.explore_all().map_err(|e| e.to_string())?;
    if explorations.is_empty() {
        return Err("explore_all returned no benchmarks".into());
    }
    Ok(session)
}

fn run_check(addr: &str) -> ExitCode {
    // pass 1 may compute (a cold server has nothing to serve) — its
    // write-through populates the daemon for everyone
    println!("check pass 1 (may compute; populates the daemon) …");
    let first = match client_pass(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: check pass 1 failed: {e}");
            return ExitCode::from(3);
        }
    };
    asip_bench::print_cache_report(&first);
    // pass 2 is the guarantee: a brand-new storeless session must be
    // served entirely by the daemon — zero recomputes, all remote hits
    println!("check pass 2 (must be all remote hits) …");
    let second = match client_pass(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: check pass 2 failed: {e}");
            return ExitCode::from(3);
        }
    };
    asip_bench::print_cache_report(&second);
    let stats = second.cache_stats();
    let (misses, remote_hits) = (stats.total_misses(), stats.total_remote_hits());
    let wire_errors = stats.remote.errors + stats.remote.skipped;
    if misses > 0 || remote_hits == 0 || wire_errors > 0 {
        eprintln!(
            "serve: check FAILED: {misses} recomputes, {remote_hits} remote hits, {wire_errors} wire errors (want 0 / >0 / 0)"
        );
        return ExitCode::from(3);
    }
    println!("check OK: 0 recomputes, {remote_hits} remote hits, no wire errors");
    ExitCode::SUCCESS
}

fn run_stop(addr: &str) -> ExitCode {
    let endpoint = match Endpoint::parse(addr) {
        Ok(e) => e,
        Err(detail) => {
            eprintln!("serve: invalid address `{addr}`: {detail}");
            return ExitCode::from(1);
        }
    };
    let tier = RemoteTier::new(endpoint, RetryPolicy::default());
    match tier.shutdown_server() {
        Ok(()) => {
            println!("daemon at {} acknowledged shutdown", tier.endpoint());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: stop {} failed: {e}", tier.endpoint());
            ExitCode::from(2)
        }
    }
}
