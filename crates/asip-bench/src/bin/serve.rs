//! Exploration-as-a-service daemon: park one warm [`Explorer`] session
//! (full tier stack resident) behind a socket and serve artifact
//! operations to every client on the network.
//!
//! ```text
//! cargo run --release -p asip-bench --bin serve                  # daemon on 127.0.0.1:4995
//! cargo run --release -p asip-bench --bin serve -- --addr unix:/tmp/asip.sock
//! cargo run --release -p asip-bench --bin serve -- --check ADDR  # end-to-end client check
//! cargo run --release -p asip-bench --bin serve -- --stop ADDR   # clean remote shutdown
//! ```
//!
//! **Daemon mode** (default) opens the shared bench store (`--store
//! PATH` overrides the usual `ASIP_STORE` convention), warms it with a
//! full `explore_all` pass unless `--no-warm` is given, binds `--addr`
//! (default `127.0.0.1:4995`; `host:0` picks an ephemeral port and
//! prints it) and serves until a client sends the `shutdown` op
//! (`serve --stop ADDR`). Shutdown drains in-flight connections and
//! flushes the store manifest.
//!
//! **Check mode** (`--check ADDR`) is the CI smoke path: it runs
//! `explore_all` on two consecutive *storeless* client sessions against
//! the daemon and requires the second to perform zero recomputes with
//! every artifact served as a remote hit. Exit code 3 when the
//! guarantee does not hold, so CI gates on it.
//!
//! **Stop mode** (`--stop ADDR`) asks the daemon to shut down cleanly;
//! exit code 2 when no daemon answers.
//!
//! **Chaos hooks** (CI's robustness smoke): `--chaos-panic` mounts a
//! [`FaultTier`] panic probe at the bottom of the daemon's stack, so a
//! `get` of the reserved probe key panics inside the request handler;
//! `--panic-probe ADDR` fires that key from a client and requires the
//! daemon to answer it with a typed error, keep serving, and report the
//! panic in its `stats` counters. Exit code 4 when isolation fails.

use asip_explorer::remote::{serve, Endpoint, RemoteTier, RetryPolicy, ServeOptions};
use asip_explorer::{
    ArtifactTier, Explorer, FaultTier, MemoryTier, Stage, TierRead, PANIC_PROBE_KEY,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// The default daemon address; the port nods to the paper's year.
const DEFAULT_ADDR: &str = "127.0.0.1:4995";

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr ADDR] [--store PATH] [--no-warm] [--chaos-panic]\n       serve --check ADDR\n       serve --panic-probe ADDR\n       serve --stop ADDR"
    );
    std::process::exit(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut store: Option<PathBuf> = None;
    let mut warm = true;
    let mut chaos_panic = false;
    let mut check: Option<String> = None;
    let mut panic_probe: Option<String> = None;
    let mut stop: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chaos-panic" => {
                chaos_panic = true;
                i += 1;
            }
            "--panic-probe" => {
                panic_probe = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--addr" => {
                addr = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "--store" => {
                store = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--no-warm" => {
                warm = false;
                i += 1;
            }
            "--check" => {
                check = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--stop" => {
                stop = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    if let Some(addr) = check {
        return run_check(&addr);
    }
    if let Some(addr) = panic_probe {
        return run_panic_probe(&addr);
    }
    if let Some(addr) = stop {
        return run_stop(&addr);
    }
    run_daemon(&addr, store, warm, chaos_panic)
}

fn run_daemon(addr: &str, store: Option<PathBuf>, warm: bool, chaos_panic: bool) -> ExitCode {
    let endpoint = match Endpoint::parse(addr) {
        Ok(e) => e,
        Err(detail) => {
            eprintln!("serve: invalid --addr `{addr}`: {detail}");
            return ExitCode::from(1);
        }
    };
    let dir = store.or_else(asip_bench::store_dir);
    let Some(dir) = dir else {
        eprintln!("serve: persistence is disabled via ASIP_STORE; pass --store PATH");
        eprintln!("       (a storeless daemon has no persistent tier to serve from)");
        return ExitCode::from(1);
    };
    let mut session = Explorer::new().with_store(&dir);
    if chaos_panic {
        // a panic probe at the bottom of the stack: Get(Compile,
        // PANIC_PROBE_KEY) panics inside the request handler, which the
        // daemon must survive (see `--panic-probe`)
        session = session.with_tier(Arc::new(FaultTier::panic_probe(
            Arc::new(MemoryTier::new()),
        )));
        println!("chaos: panic probe armed on key {PANIC_PROBE_KEY:#x}");
    }
    let session = Arc::new(session);
    println!("store: {}", dir.display());
    if warm {
        print!("warming the stack with explore_all … ");
        match session.explore_all() {
            Ok(explorations) => println!("{} benchmarks ready", explorations.len()),
            Err(e) => {
                eprintln!("serve: warm-up failed: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let handle = match serve(Arc::clone(&session), &endpoint, ServeOptions::default()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind {endpoint}: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "serving on {} (stop with: serve --stop {0})",
        handle.endpoint()
    );
    let stats = handle.join();
    println!(
        "served {} requests over {} connections: {} hits / {} misses, {} in, {} out, {} frame errors",
        stats.requests,
        stats.connections,
        stats.hits,
        stats.misses,
        asip_bench::human_bytes(stats.bytes_in),
        asip_bench::human_bytes(stats.bytes_out),
        stats.frame_errors,
    );
    if stats.overloaded + stats.panics + stats.deadline_truncated + stats.idle_reaped > 0 {
        println!(
            "hardening: {} shed, {} panics isolated, {} batch keys past deadline, {} idle conns reaped",
            stats.overloaded, stats.panics, stats.deadline_truncated, stats.idle_reaped,
        );
    }
    asip_bench::print_cache_report(&session);
    ExitCode::SUCCESS
}

/// One storeless client pass: `explore_all` against the daemon only.
/// Returns the session for counter inspection, or an error string.
fn client_pass(addr: &str) -> Result<Explorer, String> {
    let session = Explorer::new()
        .with_remote(addr, RetryPolicy::default())
        .map_err(|e| e.to_string())?;
    let explorations = session.explore_all().map_err(|e| e.to_string())?;
    if explorations.is_empty() {
        return Err("explore_all returned no benchmarks".into());
    }
    Ok(session)
}

fn run_check(addr: &str) -> ExitCode {
    // pass 1 may compute (a cold server has nothing to serve) — its
    // write-through populates the daemon for everyone
    println!("check pass 1 (may compute; populates the daemon) …");
    let first = match client_pass(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: check pass 1 failed: {e}");
            return ExitCode::from(3);
        }
    };
    asip_bench::print_cache_report(&first);
    // pass 2 is the guarantee: a brand-new storeless session must be
    // served entirely by the daemon — zero recomputes, all remote hits
    println!("check pass 2 (must be all remote hits) …");
    let second = match client_pass(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: check pass 2 failed: {e}");
            return ExitCode::from(3);
        }
    };
    asip_bench::print_cache_report(&second);
    let stats = second.cache_stats();
    let (misses, remote_hits) = (stats.total_misses(), stats.total_remote_hits());
    let wire_errors = stats.remote.errors + stats.remote.skipped;
    if misses > 0 || remote_hits == 0 || wire_errors > 0 {
        eprintln!(
            "serve: check FAILED: {misses} recomputes, {remote_hits} remote hits, {wire_errors} wire errors (want 0 / >0 / 0)"
        );
        return ExitCode::from(3);
    }
    println!("check OK: 0 recomputes, {remote_hits} remote hits, no wire errors");
    ExitCode::SUCCESS
}

/// Fire the reserved panic key at a daemon started with
/// `--chaos-panic` and require panic isolation to hold: the probe
/// degrades to a client-side miss, the daemon answers a follow-up ping,
/// and its `stats` counters report the panic.
fn run_panic_probe(addr: &str) -> ExitCode {
    let endpoint = match Endpoint::parse(addr) {
        Ok(e) => e,
        Err(detail) => {
            eprintln!("serve: invalid address `{addr}`: {detail}");
            return ExitCode::from(1);
        }
    };
    let tier = RemoteTier::new(endpoint, RetryPolicy::fail_fast())
        .with_probe_interval(std::time::Duration::ZERO);
    println!("firing panic probe key {PANIC_PROBE_KEY:#x} …");
    match tier.get(Stage::Compile, PANIC_PROBE_KEY) {
        TierRead::Miss => {}
        other => {
            eprintln!("serve: panic probe FAILED: expected a degraded miss, got {other:?}");
            return ExitCode::from(4);
        }
    }
    if let Err(e) = tier.ping() {
        eprintln!("serve: panic probe FAILED: daemon did not survive the panic: {e}");
        return ExitCode::from(4);
    }
    match tier.server_stats() {
        Ok(stats) if stats.panics >= 1 => {
            println!(
                "panic probe OK: daemon isolated {} panic(s) and kept serving",
                stats.panics
            );
            ExitCode::SUCCESS
        }
        Ok(stats) => {
            eprintln!(
                "serve: panic probe FAILED: daemon reports {} panics (want >= 1 — was it started with --chaos-panic?)",
                stats.panics
            );
            ExitCode::from(4)
        }
        Err(e) => {
            eprintln!("serve: panic probe FAILED: stats unavailable after the panic: {e}");
            ExitCode::from(4)
        }
    }
}

fn run_stop(addr: &str) -> ExitCode {
    let endpoint = match Endpoint::parse(addr) {
        Ok(e) => e,
        Err(detail) => {
            eprintln!("serve: invalid address `{addr}`: {detail}");
            return ExitCode::from(1);
        }
    };
    let tier = RemoteTier::new(endpoint, RetryPolicy::default());
    match tier.shutdown_server() {
        Ok(()) => {
            println!("daemon at {} acknowledged shutdown", tier.endpoint());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: stop {} failed: {e}", tier.endpoint());
            ExitCode::from(2)
        }
    }
}
