//! # asip-bench
//!
//! The experiment harness: shared driver code used by the binaries that
//! regenerate every table and figure of the paper, and by the Criterion
//! benches.
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 (benchmark inventory) |
//! | `fig3_4 -- --length 2|3|4|5` | Figures 3–4 (combined sorted frequency series per opt level) |
//! | `fig5_6 -- --length 2|4` | Figures 5–6 (per-benchmark sequences ≥ 5%) |
//! | `table2` | Table 2 (example sequences at levels 0/1/2) |
//! | `table3` | Table 3 (iterative greedy coverage, with/without optimization) |
//! | `design_loop` | the Figure-1 closed loop (extension selection → rewrite → speedup) |
//! | `ablation` | design-choice sweeps: window, unroll, issue width, prune floor |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asip_benchmarks::Benchmark;
use asip_chains::{DetectorConfig, SequenceDetector, SequenceReport};
use asip_ir::Program;
use asip_opt::{OptLevel, Optimizer, ScheduleGraph};
use asip_sim::Profile;

/// A fully analyzed benchmark: program, profile and one schedule graph
/// plus sequence report per optimization level (paper order 0/1/2).
pub struct AnalyzedBenchmark {
    /// The benchmark metadata.
    pub bench: Benchmark,
    /// Compiled 3-address code.
    pub program: Program,
    /// Profiled execution counts.
    pub profile: Profile,
    /// Schedule graphs, indexed by `OptLevel::number()`.
    pub graphs: [ScheduleGraph; 3],
    /// Sequence reports, indexed by `OptLevel::number()`.
    pub reports: [SequenceReport; 3],
}

/// Compile, profile and analyze one benchmark at all three levels.
///
/// # Panics
///
/// Panics if a built-in benchmark fails to compile or simulate — that is
/// a bug in this repository, not an input condition.
pub fn analyze_benchmark(bench: &Benchmark, config: DetectorConfig) -> AnalyzedBenchmark {
    let program = bench
        .compile()
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", bench.name));
    let profile = bench
        .profile(&program)
        .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", bench.name));
    let detector = SequenceDetector::new(config);
    let graphs = OptLevel::all().map(|l| Optimizer::new(l).run(&program, &profile));
    let reports = [
        detector.analyze(&graphs[0]),
        detector.analyze(&graphs[1]),
        detector.analyze(&graphs[2]),
    ];
    AnalyzedBenchmark {
        bench: *bench,
        program,
        profile,
        graphs,
        reports,
    }
}

/// Analyze the whole Table-1 suite.
pub fn analyze_suite(config: DetectorConfig) -> Vec<AnalyzedBenchmark> {
    asip_benchmarks::registry()
        .iter()
        .map(|b| analyze_benchmark(b, config))
        .collect()
}

/// Combined (suite-averaged) reports per level from an analyzed suite.
pub fn combined_reports(suite: &[AnalyzedBenchmark]) -> [SequenceReport; 3] {
    let per_level = |k: usize| {
        let rs: Vec<SequenceReport> = suite.iter().map(|a| a.reports[k].clone()).collect();
        asip_chains::combine(&rs)
    };
    [per_level(0), per_level(1), per_level(2)]
}

/// Render an ASCII bar for figure-style output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Parse a `--length N` argument (default 2).
pub fn length_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--length")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_one_benchmark_all_levels() {
        let reg = asip_benchmarks::registry();
        let b = reg.find("bspline").expect("built-in");
        let a = analyze_benchmark(b, DetectorConfig::default());
        assert_eq!(a.bench.name, "bspline");
        for g in &a.graphs {
            g.check_invariants().expect("invariants");
        }
        assert!(!a.reports[1].is_empty());
        // levels share the frequency denominator
        assert_eq!(
            a.reports[0].total_profile_ops,
            a.reports[2].total_profile_ops
        );
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
    }
}
