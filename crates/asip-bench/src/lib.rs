//! # asip-bench
//!
//! The experiment harness: shared driver code used by the binaries that
//! regenerate every table and figure of the paper, and by the Criterion
//! benches.
//!
//! All drivers run on one [`asip_explorer::Explorer`] session, so a
//! sweep that revisits a benchmark under many detector or optimizer
//! configurations compiles, simulates and schedules it exactly once;
//! [`AnalyzedBenchmark`] and [`analyze_suite`] survive as thin shims
//! over the session for the table/figure binaries.
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 (benchmark inventory) |
//! | `fig3_4 -- --length 2|3|4|5` | Figures 3–4 (combined sorted frequency series per opt level) |
//! | `fig5_6 -- --length 2|4` | Figures 5–6 (per-benchmark sequences ≥ 5%) |
//! | `table2` | Table 2 (example sequences at levels 0/1/2) |
//! | `table3` | Table 3 (iterative greedy coverage, with/without optimization) |
//! | `design_loop` | the Figure-1 closed loop (extension selection → rewrite → speedup) |
//! | `ablation` | design-choice sweeps: window, unroll, issue width, prune floor |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asip_benchmarks::Benchmark;
use asip_chains::{DetectorConfig, SequenceReport};
use asip_explorer::Explorer;
use asip_ir::Program;
use asip_opt::{OptLevel, ScheduleGraph};
use asip_sim::Profile;
use std::path::PathBuf;
use std::sync::Arc;

/// A fully analyzed benchmark: program, profile and one schedule graph
/// plus sequence report per optimization level (paper order 0/1/2).
/// Payloads are shared handles into the session cache.
pub struct AnalyzedBenchmark {
    /// The benchmark metadata.
    pub bench: Benchmark,
    /// Compiled 3-address code.
    pub program: Arc<Program>,
    /// Profiled execution counts.
    pub profile: Arc<Profile>,
    /// Schedule graphs, indexed by `OptLevel::number()`.
    pub graphs: [Arc<ScheduleGraph>; 3],
    /// Sequence reports, indexed by `OptLevel::number()`.
    pub reports: [Arc<SequenceReport>; 3],
}

/// The artifact-store directory shared by every bench binary, so the
/// twelve benchmarks are compiled, profiled and scheduled once *across*
/// the whole reproduction run instead of once per binary.
///
/// Defaults to `target/asip-store` under the *workspace root* (resolved
/// from this crate's compile-time manifest path, so invoking a binary
/// from any working directory still shares one store, and `cargo clean`
/// clears it). The `ASIP_STORE` environment variable overrides the
/// location (resolved against the caller's working directory as usual);
/// setting it to `0`, `off` or the empty string disables persistence
/// entirely.
pub fn store_dir() -> Option<PathBuf> {
    match std::env::var("ASIP_STORE") {
        Ok(v) if v.is_empty() || v == "0" || v == "off" => None,
        Ok(v) => Some(PathBuf::from(v)),
        // crates/asip-bench → two levels up is the workspace root
        Err(_) => Some(
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target/asip-store"),
        ),
    }
}

/// Attach the shared bench artifact store ([`store_dir`]) to a session;
/// a no-op when persistence is disabled via `ASIP_STORE`.
pub fn with_shared_store(session: Explorer) -> Explorer {
    match store_dir() {
        Some(dir) => session.with_store(dir),
        None => session,
    }
}

/// A session configured the way the paper's experiments run: all three
/// levels, the given detector, default constraints and seed — and the
/// shared on-disk artifact store, so separate binaries reuse each
/// other's compile/profile/schedule work.
pub fn session(config: DetectorConfig) -> Explorer {
    with_shared_store(Explorer::new().with_detector(config))
}

/// Compile, profile and analyze one benchmark at all three levels on
/// `session`, with the session's detector configuration.
///
/// # Panics
///
/// Panics if a built-in benchmark fails to compile or simulate — that is
/// a bug in this repository, not an input condition.
pub fn analyze_benchmark(session: &Explorer, name: &str) -> AnalyzedBenchmark {
    analyze_benchmark_with(session, name, session.detector())
}

/// As [`analyze_benchmark`], with an explicit detector configuration;
/// the compile/profile/schedule stages are shared across detectors.
///
/// # Panics
///
/// As [`analyze_benchmark`].
pub fn analyze_benchmark_with(
    session: &Explorer,
    name: &str,
    detector: DetectorConfig,
) -> AnalyzedBenchmark {
    let fail =
        |stage: &str, e: &dyn std::fmt::Display| -> ! { panic!("{name} failed to {stage}: {e}") };
    let compiled = session
        .compile(name)
        .unwrap_or_else(|e| fail("compile", &e));
    let profiled = session
        .profile(name)
        .unwrap_or_else(|e| fail("simulate", &e));
    let opt = session.opt_config();
    let graphs = OptLevel::all().map(|l| {
        session
            .schedule_with(name, l, opt)
            .unwrap_or_else(|e| fail("schedule", &e))
            .graph
    });
    let reports = OptLevel::all().map(|l| {
        session
            .analyze_with(name, l, opt, detector)
            .unwrap_or_else(|e| fail("analyze", &e))
            .report
    });
    AnalyzedBenchmark {
        bench: compiled.benchmark,
        program: compiled.program,
        profile: profiled.profile,
        graphs,
        reports,
    }
}

/// Analyze the whole registry on `session` (parallel over the session
/// thread pool), with an explicit detector configuration.
///
/// # Panics
///
/// As [`analyze_benchmark`].
pub fn analyze_suite_with(session: &Explorer, detector: DetectorConfig) -> Vec<AnalyzedBenchmark> {
    session
        .map_all(|b| Ok(analyze_benchmark_with(session, b.name, detector)))
        .expect("analysis shims panic rather than returning errors")
}

/// Analyze the whole Table-1 suite on a fresh session.
pub fn analyze_suite(config: DetectorConfig) -> Vec<AnalyzedBenchmark> {
    let session = session(config);
    analyze_suite_with(&session, config)
}

/// Combined (suite-averaged) reports per level from an analyzed suite.
pub fn combined_reports(suite: &[AnalyzedBenchmark]) -> [SequenceReport; 3] {
    let per_level = |k: usize| {
        let rs: Vec<SequenceReport> = suite.iter().map(|a| (*a.reports[k]).clone()).collect();
        asip_chains::combine(&rs)
    };
    [per_level(0), per_level(1), per_level(2)]
}

/// Render a byte count with a binary-unit suffix (`1536` → `"1.5 KiB"`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Print the standard end-of-run cache report every bench binary closes
/// with: the per-stage memory counters, then one line per attached tier
/// (disk, staging memory, remote, custom) with its hit/miss/write/
/// corrupt counters and byte totals, then remote wire traffic and
/// prefetch/GC activity when any happened. One formatter for all
/// binaries, so the report (and the new tier counters) can never drift
/// between them.
pub fn print_cache_report(session: &Explorer) {
    let stats = session.cache_stats();
    println!("session cache: {stats}");
    for (name, t) in session.tier_totals() {
        println!(
            "{name:>14}: {}h/{}m/{}w{} — {} entries, {}",
            t.hits,
            t.misses,
            t.writes,
            if t.corrupt > 0 {
                format!("/{}corrupt", t.corrupt)
            } else {
                String::new()
            },
            t.entries,
            human_bytes(t.bytes),
        );
    }
    let r = stats.remote;
    if r.requests + r.skipped > 0 {
        println!(
            "{:>14}: {} requests ({} retries, {} errors, {} skipped) — {} sent, {} received",
            "remote wire",
            r.requests,
            r.retries,
            r.errors,
            r.skipped,
            human_bytes(r.bytes_sent),
            human_bytes(r.bytes_received),
        );
    }
    let (prefetch, gc) = (stats.total_prefetch_hits(), stats.total_gc_evictions());
    if prefetch > 0 {
        println!(
            "{:>14}: {prefetch} artifacts decoded from prefetched bytes",
            "prefetch"
        );
    }
    if gc > 0 {
        println!("{:>14}: {gc} store entries evicted this session", "gc");
    }
}

/// Render an ASCII bar for figure-style output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Parse a `--length N` argument (default 2).
pub fn length_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--length")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A storeless session: these tests pin exact memory-tier miss
    /// counts, which a warm shared store would (correctly) turn into
    /// disk hits — persistence behavior is covered by the facade's
    /// `tests/persistence.rs`.
    fn hermetic_session(config: DetectorConfig) -> Explorer {
        Explorer::new().with_detector(config)
    }

    #[test]
    fn analyze_one_benchmark_all_levels() {
        let s = hermetic_session(DetectorConfig::default());
        let a = analyze_benchmark(&s, "bspline");
        assert_eq!(a.bench.name, "bspline");
        for g in &a.graphs {
            g.check_invariants().expect("invariants");
        }
        assert!(!a.reports[1].is_empty());
        // levels share the frequency denominator
        assert_eq!(
            a.reports[0].total_profile_ops,
            a.reports[2].total_profile_ops
        );
        // the shim reuses the session cache: one compile, one profile
        let stats = s.cache_stats();
        assert_eq!(stats.compile.misses, 1);
        assert_eq!(stats.profile.misses, 1);
        assert!(stats.compile.hits >= 1, "later stages hit the cache");
    }

    #[test]
    fn suite_analysis_is_cache_shared_across_detectors() {
        let s = hermetic_session(DetectorConfig::default());
        let a2 = analyze_benchmark_with(&s, "sewha", DetectorConfig::default().with_length(2));
        let a4 = analyze_benchmark_with(&s, "sewha", DetectorConfig::default().with_length(4));
        assert!(Arc::ptr_eq(&a2.program, &a4.program), "one compile");
        assert!(Arc::ptr_eq(&a2.graphs[1], &a4.graphs[1]), "one schedule");
        assert_eq!(s.cache_stats().compile.misses, 1);
        assert_eq!(s.cache_stats().schedule.misses, 3, "one per level");
    }

    #[test]
    fn asip_store_env_disables_the_disk_tier_entirely() {
        // Env mutation is process-global; this is the only test (in this
        // binary) that touches ASIP_STORE, and the hermetic sessions
        // above never read it.
        for off in ["0", "off", ""] {
            std::env::set_var("ASIP_STORE", off);
            assert_eq!(store_dir(), None, "ASIP_STORE={off:?} must disable");
            let session = session(DetectorConfig::default());
            assert!(session.store().is_none());
            assert!(session.tier_stack().is_empty(), "no tiers at all");
            session.compile("fir").expect("compiles without a store");
            let stats = session.cache_stats();
            assert_eq!(stats.total_disk_hits() + stats.total_disk_misses(), 0);
            assert_eq!(stats.total_disk_writes(), 0);
            assert_eq!(stats.total_prefetch_hits(), 0);
        }
        std::env::set_var("ASIP_STORE", "some/explicit/dir");
        assert!(store_dir().is_some());
        std::env::remove_var("ASIP_STORE");
        assert!(store_dir().is_some(), "default store location");
    }

    #[test]
    fn human_bytes_picks_sane_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
    }
}
