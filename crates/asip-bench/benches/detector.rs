//! Detector scaling: chain length, chaining window, and the effect of
//! the branch-and-bound pruning floor (the paper's Section 5 search).

use asip_chains::{DetectorConfig, SequenceDetector};
use asip_opt::{OptLevel, Optimizer, ScheduleGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn pipelined_graph(name: &str) -> ScheduleGraph {
    let reg = asip_benchmarks::registry();
    let b = reg.find(name).expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    Optimizer::new(OptLevel::Pipelined).run(&program, &profile)
}

fn bench_chain_length(c: &mut Criterion) {
    let graph = pipelined_graph("edge");
    let mut g = c.benchmark_group("detector/max_len");
    for len in [2usize, 3, 4, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, &len| {
            let det = SequenceDetector::new(DetectorConfig {
                min_len: 2,
                max_len: len,
                ..DetectorConfig::default()
            });
            bench.iter(|| det.occurrences(std::hint::black_box(&graph)).len());
        });
    }
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let graph = pipelined_graph("edge");
    let mut g = c.benchmark_group("detector/window");
    for w in [0usize, 1, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |bench, &w| {
            let det = SequenceDetector::new(DetectorConfig::default().with_window(w));
            bench.iter(|| det.occurrences(std::hint::black_box(&graph)).len());
        });
    }
    g.finish();
}

fn bench_prune_floor(c: &mut Criterion) {
    let graph = pipelined_graph("pse");
    let mut g = c.benchmark_group("detector/prune_floor");
    for floor in [0.0f64, 1.0, 5.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(floor),
            &floor,
            |bench, &floor| {
                let det = SequenceDetector::new(DetectorConfig::default().with_prune_floor(floor));
                bench.iter(|| det.occurrences(std::hint::black_box(&graph)).len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_chain_length, bench_window, bench_prune_floor);
criterion_main!(benches);
