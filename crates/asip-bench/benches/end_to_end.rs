//! End-to-end experiment cost: one full paper-pipeline pass (compile →
//! profile → optimize → detect) per benchmark, and the iterative
//! coverage study.

use asip_chains::{CoverageAnalyzer, DetectorConfig, SequenceDetector};
use asip_opt::{OptLevel, Optimizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end/pipeline");
    g.sample_size(10);
    for name in ["sewha", "fir", "edge"] {
        let reg = asip_benchmarks::registry();
        let b = reg.find(name).copied().expect("built-in");
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                let program = b.compile().expect("compiles");
                let profile = b.profile(&program).expect("simulates");
                let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
                SequenceDetector::new(DetectorConfig::default())
                    .analyze(&graph)
                    .len()
            });
        });
    }
    g.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let reg = asip_benchmarks::registry();
    let b = reg.find("edge").expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    let graph = Optimizer::new(OptLevel::Pipelined).run(&program, &profile);
    c.bench_function("end_to_end/coverage_study", |bench| {
        let analyzer = CoverageAnalyzer::new(DetectorConfig::default());
        bench.iter(|| analyzer.analyze(std::hint::black_box(&graph)).coverage());
    });
}

criterion_group!(benches, bench_full_pipeline, bench_coverage);
criterion_main!(benches);
