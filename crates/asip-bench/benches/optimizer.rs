//! Optimizer throughput per level, plus the pipelining/renaming
//! ablations (which pass exposes which cost).

use asip_opt::{OptConfig, OptLevel, Optimizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_levels(c: &mut Criterion) {
    let reg = asip_benchmarks::registry();
    let b = reg.find("pse").expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    let mut g = c.benchmark_group("optimizer/level");
    for level in OptLevel::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(level.number()),
            &level,
            |bench, &level| {
                let opt = Optimizer::new(level);
                bench.iter(|| {
                    opt.run(
                        std::hint::black_box(&program),
                        std::hint::black_box(&profile),
                    )
                    .node_count()
                });
            },
        );
    }
    g.finish();
}

fn bench_unroll(c: &mut Criterion) {
    let reg = asip_benchmarks::registry();
    let b = reg.find("fir").expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    let mut g = c.benchmark_group("optimizer/unroll");
    for unroll in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(unroll),
            &unroll,
            |bench, &unroll| {
                let opt = Optimizer::new(OptLevel::Pipelined).with_config(OptConfig {
                    unroll,
                    ..OptConfig::default()
                });
                bench.iter(|| opt.run(&program, &profile).node_count());
            },
        );
    }
    g.finish();
}

fn bench_width(c: &mut Criterion) {
    let reg = asip_benchmarks::registry();
    let b = reg.find("fir").expect("built-in");
    let program = b.compile().expect("compiles");
    let profile = b.profile(&program).expect("simulates");
    let mut g = c.benchmark_group("optimizer/width");
    for width in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(width),
            &width,
            |bench, &width| {
                let opt = Optimizer::new(OptLevel::Pipelined).with_config(OptConfig {
                    width,
                    ..OptConfig::default()
                });
                bench.iter(|| opt.run(&program, &profile).weighted_cycles());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_levels, bench_unroll, bench_width);
criterion_main!(benches);
