//! Profiling-simulator throughput (ops interpreted per second) and the
//! front-end compile cost for each benchmark class.

use asip_sim::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/run");
    for name in ["sewha", "edge", "pse"] {
        let reg = asip_benchmarks::registry();
        let b = reg.find(name).expect("built-in");
        let program = b.compile().expect("compiles");
        let data = b.dataset();
        let ops = Simulator::new(&program)
            .run(&data)
            .expect("runs")
            .profile
            .total_ops();
        g.throughput(Throughput::Elements(ops));
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                Simulator::new(&program)
                    .run(std::hint::black_box(&data))
                    .expect("runs")
                    .profile
                    .total_ops()
            });
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend/compile");
    for name in ["bspline", "intfft"] {
        let reg = asip_benchmarks::registry();
        let b = reg.find(name).copied().expect("built-in");
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                asip_frontend::compile(b.name, std::hint::black_box(b.source))
                    .expect("compiles")
                    .inst_count()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation, bench_compile);
criterion_main!(benches);
